package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/world"
)

// ScrubConfig configures the anti-entropy cadence sweep.
type ScrubConfig struct {
	// Cadences are the scrub intervals to sweep (default 15s/30s/60s/120s;
	// quick mode 20s/60s). A no-scrub baseline row always runs first.
	Cadences []time.Duration
	// Objects is the number of source writes per scenario (default 32;
	// quick mode 12).
	Objects int
	// Profile is a chaos spec ("notify-flaky@7"); empty uses a built-in
	// lossy profile (25% notification loss, 5% duplication) so that
	// notification-driven replication alone visibly fails to converge.
	Profile string
	Quick   bool
}

// ScrubPoint is one row of the sweep: what a scrub cadence buys (residual
// divergence, divergence age) and what it costs (digest traffic, dollars).
type ScrubPoint struct {
	Cadence            string // "off" for the no-scrub baseline
	CadenceS           float64
	Objects            int
	Converged          int
	ConvergencePct     float64
	ResidualDivergence int // missing + stale + orphaned keys at the final audit
	Rounds             int64
	RepairsDispatched  int64
	RepairsRedriven    int64
	RepairsDeduped     int64
	SLOViolations      int64 // repairs older than the declared divergence SLO (2x cadence)
	DigestBytes        int64
	RepairAgeP50S      float64 // divergence age when the scrubber repaired it
	RepairAgeMaxS      float64
	DupFinalWrites     int
	TotalCostUSD       float64
	ScrubCostUSD       float64 // marginal cost vs the no-scrub baseline
	CostOverheadPct    float64
}

// ScrubResult is the divergence-vs-cadence-vs-cost curve.
type ScrubResult struct {
	Profile string
	Points  []ScrubPoint
}

// RunScrub replays an identical lossy-notification workload once without
// anti-entropy and once per scrub cadence, with the scrubber's periodic
// loop running alongside the writes. The baseline row shows how far
// notification-driven replication alone diverges; each cadence row shows
// the residual divergence going to zero, the divergence age the cadence
// bounds, and the digest/repair dollars it costs. Deterministic per
// profile seed: the same config yields byte-identical Print output.
func RunScrub(cfg ScrubConfig) (*ScrubResult, error) {
	cadences := cfg.Cadences
	if len(cadences) == 0 {
		cadences = []time.Duration{15 * time.Second, 30 * time.Second, 60 * time.Second, 120 * time.Second}
		if cfg.Quick {
			cadences = []time.Duration{20 * time.Second, 60 * time.Second}
		}
	}
	objects := cfg.Objects
	if objects <= 0 {
		objects = 32
		if cfg.Quick {
			objects = 12
		}
	}
	prof := chaos.Profile{
		Name: "notify-lossy", Seed: "scrub",
		NotifyLossRate: 0.25, NotifyDupRate: 0.05,
	}
	if cfg.Profile != "" {
		var err error
		if prof, err = chaos.Parse(cfg.Profile); err != nil {
			return nil, err
		}
	}

	res := &ScrubResult{Profile: prof.Name}
	base, err := runScrubScenario(prof, 0, objects, cfg.Quick)
	if err != nil {
		return nil, err
	}
	res.Points = append(res.Points, base)
	for _, cad := range cadences {
		pt, err := runScrubScenario(prof, cad, objects, cfg.Quick)
		if err != nil {
			return nil, err
		}
		pt.ScrubCostUSD = pt.TotalCostUSD - base.TotalCostUSD
		if base.TotalCostUSD > 0 {
			pt.CostOverheadPct = (pt.TotalCostUSD/base.TotalCostUSD - 1) * 100
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// runScrubScenario runs one cadence's scenario on a fresh world. Cadence 0
// is the no-scrub baseline.
func runScrubScenario(prof chaos.Profile, cadence time.Duration, objects int, quick bool) (ScrubPoint, error) {
	label := "off"
	if cadence > 0 {
		label = fmt.Sprintf("%ds", int(cadence.Seconds()))
	}
	w := newWorld("scrub-" + label)
	src, dst := AWSEast, AzureEast
	srcBucket, dstBucket := "scrub-src", "scrub-dst"
	mustCreate(w, src, srcBucket, true)
	mustCreate(w, dst, dstBucket, true)

	svc := deployService(w, model.New(), engine.Rule{
		Src: src, Dst: dst, SrcBucket: srcBucket, DstBucket: dstBucket,
	}, core.Options{
		ProfileRounds: profileRounds(quick),
		EnableScrub:   cadence > 0,
		ScrubCadence:  cadence,
		DivergenceSLO: 2 * cadence,
	})

	// Duplicate-final-write audit, deduped on Seq (notify-dup chaos replays
	// deliveries of single writes; those are not duplicate writes).
	var dupMu sync.Mutex
	dups := 0
	lastSeq := map[string]uint64{}
	lastETag := map[string]string{}
	if err := w.Region(dst).Obj.Subscribe(dstBucket, func(ev objstore.Event) {
		if ev.Type != objstore.EventPut {
			return
		}
		dupMu.Lock()
		if ev.Seq > lastSeq[ev.Key] {
			if ev.ETag != "" && lastETag[ev.Key] == ev.ETag {
				dups++
			}
			lastSeq[ev.Key] = ev.Seq
			lastETag[ev.Key] = ev.ETag
		}
		dupMu.Unlock()
	}); err != nil {
		return ScrubPoint{}, err
	}

	w.SetChaos(prof)
	cost := costDelta(w, func() {
		// Writes 2s apart; the periodic scrub loop runs alongside them, so
		// the divergence-age histogram reflects the cadence, not just a
		// single post-hoc sweep.
		for i := 0; i < objects; i++ {
			key := fmt.Sprintf("obj-%03d", i)
			putObjectRetrying(w, src, srcBucket, key, []int64{256 * 1024, MB, 4 * MB}[i%3], i)
			if i == 0 && svc.Scrubber != nil {
				svc.Scrubber.Start()
			}
			w.Clock.Sleep(2 * time.Second)
		}
		w.Clock.Quiesce()
		// The periodic loop self-terminates after two clean rounds; if it
		// exited before late drops appeared, a driver-paced pass finishes
		// the job (still under chaos).
		if svc.Scrubber != nil {
			if n := auditDivergence(w, svc); n > 0 {
				if _, _, err := svc.Scrubber.RunUntilClean(); err != nil {
					panic(err)
				}
				w.Clock.Quiesce()
			}
		}
	})
	w.SetChaos(chaos.Profile{})

	metas, err := w.Region(src).Obj.List(srcBucket)
	if err != nil {
		return ScrubPoint{}, err
	}
	converged := 0
	for _, m := range metas {
		if cur, err := w.Region(dst).Obj.Head(dstBucket, m.Key); err == nil && cur.ETag == m.ETag {
			converged++
		}
	}
	pct := 100.0
	if len(metas) > 0 {
		pct = 100 * float64(converged) / float64(len(metas))
	}

	ageHist := w.Metrics.Histogram("antientropy.divergence.age.seconds")
	ageP50, ageMax := 0.0, 0.0
	if ageHist.Count() > 0 {
		ageP50, ageMax = ageHist.Quantile(0.5), ageHist.Max()
	}
	dupMu.Lock()
	dupFinal := dups
	dupMu.Unlock()
	return ScrubPoint{
		Cadence:            label,
		CadenceS:           cadence.Seconds(),
		Objects:            len(metas),
		Converged:          converged,
		ConvergencePct:     pct,
		ResidualDivergence: auditDivergence(w, svc),
		Rounds:             w.Metrics.Counter("antientropy.rounds").Value(),
		RepairsDispatched:  w.Metrics.Counter("antientropy.repair.dispatched").Value(),
		RepairsRedriven:    w.Metrics.Counter("antientropy.repair.redriven").Value(),
		RepairsDeduped:     w.Metrics.Counter("antientropy.repair.deduped").Value(),
		SLOViolations:      w.Metrics.Counter("antientropy.slo_violations").Value(),
		DigestBytes:        w.Metrics.Counter("antientropy.digest.bytes").Value(),
		RepairAgeP50S:      ageP50,
		RepairAgeMaxS:      ageMax,
		DupFinalWrites:     dupFinal,
		TotalCostUSD:       cost,
	}, nil
}

// auditDivergence counts keys where the destination does not hold the
// current source version (missing or stale) plus destination keys absent
// from the source (orphans) — the residual divergence metric.
func auditDivergence(w *world.World, svc *core.Service) int {
	rule := svc.Rule
	srcMetas, err := w.Region(rule.Src).Obj.List(rule.SrcBucket)
	if err != nil {
		panic(err)
	}
	dstMetas, err := w.Region(rule.Dst).Obj.List(rule.DstBucket)
	if err != nil {
		panic(err)
	}
	onSrc := make(map[string]string, len(srcMetas))
	divergent := 0
	for _, m := range srcMetas {
		onSrc[m.Key] = m.ETag
	}
	dstETag := make(map[string]string, len(dstMetas))
	for _, m := range dstMetas {
		dstETag[m.Key] = m.ETag
		if _, ok := onSrc[m.Key]; !ok {
			divergent++ // orphan
		}
	}
	for k, etag := range onSrc {
		if dstETag[k] != etag {
			divergent++ // missing or stale
		}
	}
	return divergent
}

// Print writes the sweep in the evaluation's table style.
func (r *ScrubResult) Print(out io.Writer) {
	fprintf(out, "Anti-entropy: scrub cadence x residual divergence/age/cost (profile %s)\n", r.Profile)
	fprintf(out, "%-8s %9s %6s %9s %7s %8s %8s %7s %10s %9s %9s %4s %10s %10s %9s\n",
		"cadence", "converged", "pct", "residual", "rounds", "repairs", "redriven",
		"slo_vio", "digest_b", "age_p50s", "age_max_s", "dup", "cost_usd", "scrub_usd", "overhead")
	for _, p := range r.Points {
		fprintf(out, "%-8s %5d/%-3d %5.1f%% %9d %7d %8d %8d %7d %10d %9.1f %9.1f %4d %10.4f %10.4f %8.1f%%\n",
			p.Cadence, p.Converged, p.Objects, p.ConvergencePct, p.ResidualDivergence,
			p.Rounds, p.RepairsDispatched, p.RepairsRedriven, p.SLOViolations,
			p.DigestBytes, p.RepairAgeP50S, p.RepairAgeMaxS, p.DupFinalWrites,
			p.TotalCostUSD, p.ScrubCostUSD, p.CostOverheadPct)
	}
}

// CSV exports the sweep.
func (r *ScrubResult) CSV() []CSVTable {
	t := CSVTable{
		Name: "scrub_cadence",
		Header: []string{"cadence", "cadence_s", "objects", "converged", "convergence_pct",
			"residual_divergence", "rounds", "repairs_dispatched", "repairs_redriven",
			"repairs_deduped", "slo_violations", "digest_bytes", "repair_age_p50_s",
			"repair_age_max_s", "dup_final_writes", "total_cost_usd", "scrub_cost_usd",
			"cost_overhead_pct"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			p.Cadence, f64(p.CadenceS), fmt.Sprint(p.Objects), fmt.Sprint(p.Converged),
			f64(p.ConvergencePct), fmt.Sprint(p.ResidualDivergence), fmt.Sprint(p.Rounds),
			fmt.Sprint(p.RepairsDispatched), fmt.Sprint(p.RepairsRedriven),
			fmt.Sprint(p.RepairsDeduped), fmt.Sprint(p.SLOViolations),
			fmt.Sprint(p.DigestBytes), f64(p.RepairAgeP50S), f64(p.RepairAgeMaxS),
			fmt.Sprint(p.DupFinalWrites), f64(p.TotalCostUSD), f64(p.ScrubCostUSD),
			f64(p.CostOverheadPct),
		})
	}
	return []CSVTable{t}
}
