package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// TestBenchDeterministic is the suite's headline guarantee: two
// identically-configured runs serialize to byte-identical JSON.
func TestBenchDeterministic(t *testing.T) {
	run := func() []byte {
		rep, err := RunBench(BenchConfig{Quick: true, SampleInterval: 5 * time.Second})
		if err != nil {
			t.Fatalf("RunBench: %v", err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identically-seeded runs differ:\n--- a\n%s\n--- b\n%s", a, b)
	}

	rep, err := ReadBenchReport(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("ReadBenchReport: %v", err)
	}
	if rep.Schema != BenchSchema || rep.Suite != "quick" {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if len(rep.Experiments) != 4 {
		t.Fatalf("got %d experiments, want 4", len(rep.Experiments))
	}
	for _, e := range rep.Experiments {
		if e.P50S <= 0 || e.P99S < e.P50S || e.CostUSD <= 0 {
			t.Errorf("%s: implausible measurements %+v", e.Name, e)
		}
		if e.Dominant == "" || len(e.Categories) == 0 {
			t.Errorf("%s: missing critical-path attribution", e.Name)
		}
		var frac float64
		for _, c := range e.Categories {
			frac += c.Fraction
		}
		if frac < 0.999999 || frac > 1.000001 {
			t.Errorf("%s: category fractions sum to %v, want 1", e.Name, frac)
		}
		if len(e.Series) != 5 {
			t.Errorf("%s: got %d series digests, want 5", e.Name, len(e.Series))
		}
	}
	if len(rep.FaultMatrix) != 4 { // none + storage-flaky + mixed + net-degraded
		t.Fatalf("got %d fault rows, want 4", len(rep.FaultMatrix))
	}
	if rep.FaultMatrix[0].Profile != "none" {
		t.Fatalf("baseline row first, got %q", rep.FaultMatrix[0].Profile)
	}
}

// TestBenchPartitionInvariantOnRealTraces drives the real engine over a
// traced workload and checks every task's critical-path shares sum to the
// root span duration within 1e-9 s.
func TestBenchPartitionInvariantOnRealTraces(t *testing.T) {
	w := newWorld("bench-invariant")
	src, dst := AWSEast, AzureEast
	mustCreate(w, src, "inv-src", true)
	mustCreate(w, dst, "inv-dst", true)
	svc := deployService(w, model.New(), engine.Rule{
		Src: src, Dst: dst, SrcBucket: "inv-src", DstBucket: "inv-dst",
	}, core.Options{ProfileRounds: profileRounds(true)})
	w.Tracer.Enable()
	w.Tracer.Reset()

	sizes := []int64{256 * 1024, 8 * MB, 48 * MB} // single-function and distributed paths
	for i, size := range sizes {
		putObject(w, src, "inv-src", fmt.Sprintf("k-%d", i), size, i)
		w.Clock.Sleep(time.Second)
	}
	w.Clock.Quiesce()

	bds := w.Tracer.CriticalPaths()
	if len(bds) != len(sizes) {
		t.Fatalf("got %d task breakdowns, want %d", len(bds), len(sizes))
	}
	if err := CheckPartition(bds, 1e-9); err != nil {
		t.Fatal(err)
	}
	for _, b := range bds {
		if b.Root.Name != "task" {
			t.Errorf("breakdown root %q, want task", b.Root.Name)
		}
		if b.Total <= 0 {
			t.Errorf("trace %s: non-positive total %v", b.TraceID, b.Total)
		}
	}
	// The workload moved real bytes: some task must be transfer- or
	// objstore-bound, and tracked delays must match resolved tasks.
	agg := telemetry.Aggregate(bds)
	if agg.Seconds(telemetry.CatTransfer)+agg.Seconds(telemetry.CatObjStore) <= 0 {
		t.Errorf("no transfer/objstore time attributed: %+v", agg.Shares)
	}
	if got := len(svc.Engine.Tracker.DelaysSeconds()); got != len(sizes) {
		t.Errorf("tracker resolved %d tasks, want %d", got, len(sizes))
	}
}

func TestCompareBench(t *testing.T) {
	base := &BenchReport{
		Schema: BenchSchema, Suite: "quick",
		Experiments: []BenchExperiment{
			{Name: "a", P50S: 1.0, P99S: 2.0, CostUSD: 0.01},
			{Name: "b", P50S: 4.0, P99S: 8.0, CostUSD: 0.10},
		},
		FaultMatrix: []BenchFault{
			{Profile: "none", ConvergencePct: 100, P99S: 1.0, DLQ: 0, LagP99S: 1.0, BacklogMax: 1},
			{Profile: "mixed", ConvergencePct: 100, P99S: 20.0, DLQ: 0, LagP99S: 20.0, BacklogMax: 6, SLOAlerts: 2},
		},
	}
	clone := func() *BenchReport {
		var buf bytes.Buffer
		if err := base.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		r, err := ReadBenchReport(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	tol := BenchTolerance{Relative: 0.25}

	if regs := CompareBench(base, clone(), tol); len(regs) != 0 {
		t.Fatalf("identical reports flagged: %v", regs)
	}

	within := clone()
	within.Experiments[0].P50S = 1.2 // +20% < 25% tolerance
	if regs := CompareBench(base, within, tol); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}

	slow := clone()
	slow.Experiments[1].P99S = 11.0 // +37.5%
	regs := CompareBench(base, slow, tol)
	if len(regs) != 1 || !strings.Contains(regs[0], "b: p99") {
		t.Fatalf("p99 regression not flagged: %v", regs)
	}

	missing := clone()
	missing.Experiments = missing.Experiments[:1]
	if regs := CompareBench(base, missing, tol); len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("missing experiment not flagged: %v", regs)
	}

	diverged := clone()
	diverged.FaultMatrix[1].ConvergencePct = 95
	diverged.FaultMatrix[1].DLQ = 2
	if regs := CompareBench(base, diverged, tol); len(regs) != 2 {
		t.Fatalf("convergence+DLQ regressions not both flagged: %v", regs)
	}

	// Observability watermarks: a previously quiet profile starting to
	// alert is a hard regression, lag p99 obeys the relative tolerance,
	// and the backlog floor absorbs one-or-two-event jitter.
	alerted := clone()
	alerted.FaultMatrix[0].SLOAlerts = 1
	alerted.FaultMatrix[1].LagP99S = 30.0 // +50%
	regs = CompareBench(base, alerted, tol)
	joined := strings.Join(regs, "\n")
	if len(regs) != 2 || !strings.Contains(joined, "lag p99") || !strings.Contains(joined, "SLO alerts") {
		t.Fatalf("lag/alert regressions not flagged: %v", regs)
	}
	backlog := clone()
	backlog.FaultMatrix[1].BacklogMax = 9 // within 25% + floor 2
	if regs := CompareBench(base, backlog, tol); len(regs) != 0 {
		t.Fatalf("backlog jitter within floor flagged: %v", regs)
	}
	backlog.FaultMatrix[1].BacklogMax = 12
	if regs := CompareBench(base, backlog, tol); len(regs) != 1 || !strings.Contains(regs[0], "backlog max") {
		t.Fatalf("backlog growth not flagged: %v", regs)
	}

	schema := clone()
	schema.Schema = "other/v9"
	if regs := CompareBench(base, schema, tol); len(regs) != 1 || !strings.Contains(regs[0], "schema") {
		t.Fatalf("schema mismatch not flagged: %v", regs)
	}

	// Zero-baseline metrics must not trip on absolute-floor-scale noise.
	zero := &BenchReport{Schema: BenchSchema, Suite: "quick",
		Experiments: []BenchExperiment{{Name: "z", P50S: 0, P99S: 0, CostUSD: 0}}}
	drift := &BenchReport{Schema: BenchSchema, Suite: "quick",
		Experiments: []BenchExperiment{{Name: "z", P50S: 0.04, P99S: 0.04, CostUSD: 5e-6}}}
	if regs := CompareBench(zero, drift, tol); len(regs) != 0 {
		t.Fatalf("noise-scale drift over zero baseline flagged: %v", regs)
	}
}
