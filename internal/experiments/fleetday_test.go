package experiments

import (
	"reflect"
	"testing"
	"time"
)

// fleetDayTestConfig trims the fleet-day replay to unit-test size: the
// full topology mix (fan-out groups, chains, mesh, direct fill) at a
// fraction of the rule budget, a short virtual window, a few thousand
// ops.
func fleetDayTestConfig() FleetDayConfig {
	return FleetDayConfig{
		Rules: 60,
		Day:   45 * time.Minute,
		Ops:   3000,
		Quick: true,
	}
}

// TestRunFleetDayConverges drives the trimmed fleet day end to end and
// holds it to the scenario's hard bars: full convergence, an empty DLQ,
// and zero duplicate final writes — at-least-once delivery with
// reordered notifications must still land every destination version
// exactly once.
func TestRunFleetDayConverges(t *testing.T) {
	res, err := RunFleetDay(fleetDayTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules != 60 {
		t.Errorf("Rules = %d, want 60", res.Rules)
	}
	if res.ConvergencePct != 100 {
		t.Errorf("ConvergencePct = %.2f, want 100 (%d/%d diverged, %d pending)",
			res.ConvergencePct, res.Diverged, res.Audited, res.Pending)
	}
	if res.Pending != 0 || res.DLQ != 0 {
		t.Errorf("Pending = %d, DLQ = %d, want 0, 0", res.Pending, res.DLQ)
	}
	if res.DupFinalWrites != 0 {
		t.Errorf("DupFinalWrites = %d, want 0", res.DupFinalWrites)
	}
	// Fan-out amplification is the scenario's point: replica writes must
	// comfortably exceed trace ops.
	if res.ReplicatedObjects < 2*int64(res.Ops) {
		t.Errorf("ReplicatedObjects = %d for %d ops, want >= 2x amplification", res.ReplicatedObjects, res.Ops)
	}
	if res.SimRate != 0 || res.RuleSimRate != 0 || res.AllocsPerObject != 0 {
		t.Errorf("rate fields populated without MeasureRates: %v %v %v",
			res.SimRate, res.RuleSimRate, res.AllocsPerObject)
	}
}

// TestRunFleetDayDeterministic reruns the same configuration and
// requires an identical result — the fleet_day bench row is part of the
// byte-identical determinism gate. The clock's single-runnable actor
// discipline makes the schedule a pure function of the simulation, so
// byte-identity holds even under race instrumentation.
func TestRunFleetDayDeterministic(t *testing.T) {
	a, err := RunFleetDay(fleetDayTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleetDay(fleetDayTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed fleet-day runs differ:\n  a = %+v\n  b = %+v", a, b)
	}
}

// TestFleetDayTopologyShape pins the topology mix: the requested rule
// count exactly, fan-out groups on three quarters of the budget, and one
// distinct entry point per source bucket.
func TestFleetDayTopologyShape(t *testing.T) {
	rules, entries, err := fleetDayTopology(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 100 {
		t.Fatalf("rules = %d, want 100", len(rules))
	}
	fan := 0
	seen := map[string]bool{}
	for _, e := range entries {
		id := e.region + "/" + e.bucket + "/" + e.prefix
		if seen[id] {
			t.Errorf("duplicate entry %s", id)
		}
		seen[id] = true
	}
	for _, r := range rules {
		if len(r.SrcBucket) >= 8 && r.SrcBucket[:8] == "day-fan-" {
			fan++
		}
	}
	if want := (100 * 3 / 4) / 16 * 16; fan != want {
		t.Errorf("fan-out rules = %d, want %d", fan, want)
	}
}
