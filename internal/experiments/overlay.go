package experiments

import (
	"io"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/stats"
)

// OverlayResult is the §6 extension ablation: direct one-sided execution
// versus a serverless overlay relay on a trans-continental path.
type OverlayResult struct {
	Src, Dst, Relay cloud.RegionID
	SizeBytes       int64

	DirectS, RelayS       float64 // mean replication time
	DirectCost, RelayCost float64 // mean per-object cost
	RelayChosen           bool    // did the planner actually pick the relay?
}

// RunOverlayAblation replicates a 1 GB object over a weak direct path
// with and without a relay candidate. Executing at the relay moves the
// long haul onto a faster platform, but the second cross-region hop adds
// an egress charge — the time/cost trade-off §6 describes for overlay
// networks.
func RunOverlayAblation(quick bool) *OverlayResult {
	rounds := 6
	if quick {
		rounds = 3
	}
	// GCP -> Azure is the weakest direct pairing (both executors are
	// slower and the GCP<->Azure peering quirk bites); an AWS relay next
	// door to the source runs the long haul on AWS's faster, steadier
	// functions.
	src := cloud.RegionID("gcp:us-east1")
	dst := cloud.RegionID("azure:southeastasia")
	relay := cloud.RegionID("aws:us-east-1")
	const size = 1 * GB

	run := func(relays []cloud.RegionID) (float64, float64, bool) {
		w := newWorld("overlay")
		m := model.New()
		mustCreate(w, src, "src", false)
		mustCreate(w, dst, "dst", false)
		var mu sync.Mutex
		var times []float64
		relayChosen := false
		svc := deployService(w, m, engine.Rule{
			Src: src, Dst: dst, SrcBucket: "src", DstBucket: "dst", SLO: 0,
		}, core.Options{
			Relays:        relays,
			ProfileRounds: profileRounds(quick),
			OnTaskDone: func(r engine.TaskResult) {
				mu.Lock()
				times = append(times, r.ExecSeconds())
				if r.Plan.Loc != src && r.Plan.Loc != dst {
					relayChosen = true
				}
				mu.Unlock()
			},
		})
		_ = svc
		var cost float64
		for r := 0; r < rounds; r++ {
			cost += costDelta(w, func() {
				putObject(w, src, "src", "obj", size, r)
			})
		}
		return stats.Mean(times), cost / float64(rounds), relayChosen
	}

	res := &OverlayResult{Src: src, Dst: dst, Relay: relay, SizeBytes: size}
	res.DirectS, res.DirectCost, _ = run(nil)
	res.RelayS, res.RelayCost, res.RelayChosen = run([]cloud.RegionID{relay})
	return res
}

// Print writes the trade-off.
func (r *OverlayResult) Print(w io.Writer) {
	fprintf(w, "Serverless overlay relay ablation (§6 extension), %s %s -> %s via %s\n",
		fmtSize(r.SizeBytes), r.Src, r.Dst, r.Relay)
	fprintf(w, "  direct:     %6.1fs  $%.4f/object\n", r.DirectS, r.DirectCost)
	fprintf(w, "  with relay: %6.1fs  $%.4f/object (relay chosen: %v)\n", r.RelayS, r.RelayCost, r.RelayChosen)
	if r.RelayS > 0 {
		fprintf(w, "  speedup %.2fx at %.2fx the cost\n", r.DirectS/r.RelayS, r.RelayCost/r.DirectCost)
	}
}
