// Package workflow simulates the cloud-managed serverless workflow
// services AReplica's SLO-bounded batching runs on (§7: AWS Step
// Functions' Wait state, Durable Functions timers, Google Workflows
// sleeps): durable delayed executions billed per state transition.
package workflow

import (
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
)

// Stats counts workflow activity.
type Stats struct {
	Executions  int64
	Transitions int64
}

// Service is one region's serverless workflow service.
type Service struct {
	clock  *simclock.Clock
	region cloud.Region
	meter  *pricing.Meter

	mu    sync.Mutex
	stats Stats
}

// New returns a Service for region, billing to meter.
func New(clock *simclock.Clock, region cloud.Region, meter *pricing.Meter) *Service {
	return &Service{clock: clock, region: region, meter: meter}
}

// Stats returns a snapshot of the service's counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Delay starts a minimal workflow execution: a Wait state of duration d
// followed by an invocation of fn. Each execution bills three state
// transitions (start, wait, invoke) at the provider's rate.
func (s *Service) Delay(d time.Duration, fn func()) {
	const transitions = 3
	s.mu.Lock()
	s.stats.Executions++
	s.stats.Transitions += transitions
	s.mu.Unlock()
	s.meter.Add("wf:transition",
		float64(transitions)*pricing.BookFor(s.region.Provider).WorkflowTransition)
	s.clock.Delay(d, fn)
}
