package workflow

import (
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
)

func TestDelayRunsAtScheduledTime(t *testing.T) {
	clk := simclock.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	m := pricing.NewMeter()
	s := New(clk, cloud.MustLookup("aws:us-east-1"), m)
	var ranAt time.Time
	s.Delay(42*time.Second, func() { ranAt = clk.Now() })
	clk.Quiesce()
	if got := ranAt.Sub(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)); got != 42*time.Second {
		t.Fatalf("ran at +%v", got)
	}
}

func TestTransitionsBilled(t *testing.T) {
	clk := simclock.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	m := pricing.NewMeter()
	s := New(clk, cloud.MustLookup("aws:us-east-1"), m)
	for i := 0; i < 10; i++ {
		s.Delay(time.Second, func() {})
	}
	clk.Quiesce()
	st := s.Stats()
	if st.Executions != 10 || st.Transitions != 30 {
		t.Fatalf("stats = %+v", st)
	}
	want := 30 * pricing.BookFor(cloud.AWS).WorkflowTransition
	if got := m.Item("wf:transition"); got < want*0.999 || got > want*1.001 {
		t.Fatalf("billed %v, want ~%v", got, want)
	}
}

func TestProviderRatesDiffer(t *testing.T) {
	aws := pricing.BookFor(cloud.AWS).WorkflowTransition
	gcp := pricing.BookFor(cloud.GCP).WorkflowTransition
	if aws <= 0 || gcp <= 0 || aws == gcp {
		t.Fatalf("workflow rates: aws=%v gcp=%v", aws, gcp)
	}
}
