// Package pricing models the list prices of the three clouds and meters
// the cost of simulated activity. The prices are the published 2025 rates
// the paper's cost columns are computed from: per-GB egress tiers, per-GB-s
// function compute, per-request object storage and NoSQL fees, hourly VM
// rates with minimum billable durations, and the S3 Replication Time
// Control fee.
package pricing

import (
	"sort"
	"sync"
	"time"

	"repro/internal/cloud"
)

const gb = float64(1 << 30)

// Book is the price list of one provider. All prices are USD.
type Book struct {
	Provider cloud.Provider

	// Egress prices per GB, charged by the sending side.
	EgressIntraContinent float64 // between the provider's regions, same continent
	EgressInterContinent float64 // between the provider's regions, across continents
	EgressInternet       float64 // to another cloud (public internet)

	// Serverless functions.
	FnGBSecond   float64 // per GB-s of configured memory
	FnInvocation float64 // per invocation

	// Serverless NoSQL database.
	KVWrite float64 // per write
	KVRead  float64 // per read

	// Object storage requests.
	ObjPut   float64 // per PUT/COPY/POST
	ObjGet   float64 // per GET
	ObjList  float64 // per LIST page request (up to 1000 keys)
	ObjAbort float64 // per AbortMultipartUpload (free on S3, write-class elsewhere)

	// VMs (Skyplane baseline).
	VMHourly      float64
	VMMinBillable time.Duration

	// Serverless workflow service (Step Functions and peers).
	WorkflowTransition float64 // per state transition

	// Proprietary replication add-ons.
	RTCPerGB float64 // AWS S3 Replication Time Control fee

	// Storage, for versioning overhead estimates.
	StorageGBMonth float64
}

var books = map[cloud.Provider]Book{
	cloud.AWS: {
		Provider:             cloud.AWS,
		EgressIntraContinent: 0.02,
		EgressInterContinent: 0.02, // AWS charges a flat inter-region tier
		EgressInternet:       0.09,
		FnGBSecond:           16.67e-6, // Lambda
		FnInvocation:         0.20e-6,
		KVWrite:              0.625e-6, // DynamoDB on-demand
		KVRead:               0.125e-6,
		ObjPut:               5.0e-6, // S3
		ObjGet:               0.4e-6,
		ObjList:              5.0e-6, // S3 LIST bills at the PUT tier
		ObjAbort:             0,      // S3 AbortMultipartUpload is free
		VMHourly:             1.30,
		VMMinBillable:        60 * time.Second,
		WorkflowTransition:   25e-6, // Step Functions standard
		RTCPerGB:             0.015,
		StorageGBMonth:       0.023,
	},
	cloud.Azure: {
		Provider:             cloud.Azure,
		EgressIntraContinent: 0.02,
		EgressInterContinent: 0.05,
		EgressInternet:       0.0875,
		FnGBSecond:           16.0e-6, // Azure Functions
		FnInvocation:         0.20e-6,
		KVWrite:              1.25e-6, // Cosmos DB serverless
		KVRead:               0.30e-6,
		ObjPut:               6.5e-6, // Blob Storage
		ObjGet:               0.5e-6,
		ObjList:              6.5e-6, // List Blobs is a write-class operation
		ObjAbort:             6.5e-6, // block-list cleanup bills write-class
		VMHourly:             1.20,
		VMMinBillable:        60 * time.Second,
		WorkflowTransition:   15e-6, // Durable Functions orchestration
		StorageGBMonth:       0.0208,
	},
	cloud.GCP: {
		Provider:             cloud.GCP,
		EgressIntraContinent: 0.02,
		EgressInterContinent: 0.05,
		EgressInternet:       0.12,
		FnGBSecond:           24.0e-6, // Cloud Run Functions (CPU+memory)
		FnInvocation:         0.40e-6,
		KVWrite:              1.80e-6, // Firestore
		KVRead:               0.60e-6,
		ObjPut:               5.0e-6, // GCS class A
		ObjGet:               0.4e-6,
		ObjList:              5.0e-6, // GCS list is class A
		ObjAbort:             5.0e-6, // GCS abort is class A
		VMHourly:             1.40,
		VMMinBillable:        60 * time.Second,
		WorkflowTransition:   10e-6, // Google Workflows internal steps
		StorageGBMonth:       0.020,
	},
}

// BookFor returns the price book of a provider.
func BookFor(p cloud.Provider) Book { return books[p] }

// EgressPerGB returns the per-GB price of moving data out of region `from`
// toward region `to`, charged at `from`'s provider rates. Same-region
// transfers are free. GCP's US-Asia inter-continent tier is priced higher,
// matching its published rates.
func EgressPerGB(from, to cloud.Region) float64 {
	if from.ID() == to.ID() {
		return 0
	}
	b := books[from.Provider]
	if from.Provider != to.Provider {
		return b.EgressInternet
	}
	if from.Continent == to.Continent {
		return b.EgressIntraContinent
	}
	if from.Provider == cloud.GCP &&
		(from.Continent == cloud.Asia || to.Continent == cloud.Asia) {
		return 0.08
	}
	return b.EgressInterContinent
}

// EgressCost returns the dollar cost of sending bytes from one region
// toward another.
func EgressCost(from, to cloud.Region, bytes int64) float64 {
	return EgressPerGB(from, to) * float64(bytes) / gb
}

// FnComputeCost returns the compute cost of one function instance running
// for dur with memGB of configured memory on provider p.
func FnComputeCost(p cloud.Provider, memGB float64, dur time.Duration) float64 {
	return books[p].FnGBSecond * memGB * dur.Seconds()
}

// VMCost returns the billed cost of a VM that ran for uptime on provider p,
// applying the minimum billable duration.
func VMCost(p cloud.Provider, uptime time.Duration) float64 {
	b := books[p]
	if uptime < b.VMMinBillable {
		uptime = b.VMMinBillable
	}
	return b.VMHourly * uptime.Hours()
}

// Meter accumulates itemized dollar costs. It is safe for concurrent use.
type Meter struct {
	mu    sync.Mutex
	items map[string]float64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{items: make(map[string]float64)} }

// Add accrues usd dollars under the named item.
func (m *Meter) Add(item string, usd float64) {
	if usd == 0 {
		return
	}
	m.mu.Lock()
	m.items[item] += usd
	m.mu.Unlock()
}

// Merge adds every item of other into m.
func (m *Meter) Merge(other *Meter) {
	other.mu.Lock()
	snapshot := make(map[string]float64, len(other.items))
	for k, v := range other.items {
		snapshot[k] = v
	}
	other.mu.Unlock()
	m.mu.Lock()
	for k, v := range snapshot {
		m.items[k] += v
	}
	m.mu.Unlock()
}

// Total returns the sum over all items. Summation runs in sorted item
// order: float addition is not associative, and map iteration order would
// otherwise wobble the last ULP between identically-seeded runs.
func (m *Meter) Total() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.items))
	for k := range m.items {
		names = append(names, k)
	}
	sort.Strings(names)
	var t float64
	for _, k := range names {
		t += m.items[k]
	}
	return t
}

// Item returns the accumulated cost of one item.
func (m *Meter) Item(item string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.items[item]
}

// Breakdown returns a copy of the itemized costs.
func (m *Meter) Breakdown() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.items))
	for k, v := range m.items {
		out[k] = v
	}
	return out
}

// Items returns the item names sorted by descending cost.
func (m *Meter) Items() []string {
	bd := m.Breakdown()
	names := make([]string, 0, len(bd))
	for k := range bd {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		if bd[names[i]] != bd[names[j]] {
			return bd[names[i]] > bd[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Reset clears all accumulated costs.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.items = make(map[string]float64)
	m.mu.Unlock()
}
