package pricing

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cloud"
)

// Property: egress pricing is non-negative, zero only for same-region,
// internet egress is the most expensive tier for every provider, and cost
// is linear in bytes.
func TestEgressPricingProperties(t *testing.T) {
	all := cloud.AllRegions()
	f := func(ai, bi uint8, kb uint16) bool {
		a := all[int(ai)%len(all)]
		b := all[int(bi)%len(all)]
		p := EgressPerGB(a, b)
		if p < 0 {
			return false
		}
		if (a.ID() == b.ID()) != (p == 0) {
			return false
		}
		if a.Provider != b.Provider && p != BookFor(a.Provider).EgressInternet {
			return false
		}
		if a.Provider == b.Provider && p > BookFor(a.Provider).EgressInternet {
			return false // intra-cloud never beats internet pricing
		}
		bytes := int64(kb) * 1024
		c1 := EgressCost(a, b, bytes)
		c2 := EgressCost(a, b, 2*bytes)
		return c2 >= c1 && (bytes == 0 || c2 == 2*c1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: VM cost is non-decreasing in uptime and flat below the
// minimum billable duration.
func TestVMCostMonotone(t *testing.T) {
	f := func(s1, s2 uint16, pi uint8) bool {
		p := cloud.Providers()[int(pi)%3]
		a := time.Duration(s1) * time.Second
		b := time.Duration(s2) * time.Second
		if a > b {
			a, b = b, a
		}
		ca, cb := VMCost(p, a), VMCost(p, b)
		if ca > cb {
			return false
		}
		minB := BookFor(p).VMMinBillable
		if b <= minB && ca != cb {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: function compute cost scales linearly in both memory and time.
func TestFnComputeLinear(t *testing.T) {
	f := func(memRaw uint8, secsRaw uint8) bool {
		mem := float64(memRaw%16) + 0.5
		d := time.Duration(int(secsRaw%100)+1) * time.Second
		c := FnComputeCost(cloud.AWS, mem, d)
		c2m := FnComputeCost(cloud.AWS, 2*mem, d)
		c2t := FnComputeCost(cloud.AWS, mem, 2*d)
		const eps = 1e-12
		return c > 0 && c2m > 2*c-eps && c2m < 2*c+eps && c2t > 2*c-eps && c2t < 2*c+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
