package pricing

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
)

func region(id string) cloud.Region { return cloud.MustLookup(cloud.RegionID(id)) }

func TestEgressTiers(t *testing.T) {
	use1 := region("aws:us-east-1")
	ca := region("aws:ca-central-1")
	euw := region("aws:eu-west-1")
	azEast := region("azure:eastus")
	azUK := region("azure:uksouth")
	gUSE := region("gcp:us-east1")
	gUSW := region("gcp:us-west1")
	gEU := region("gcp:europe-west6")
	gAS := region("gcp:asia-northeast1")

	cases := []struct {
		from, to cloud.Region
		want     float64
	}{
		{use1, use1, 0},        // same region: free
		{use1, ca, 0.02},       // AWS inter-region
		{use1, euw, 0.02},      // AWS flat inter-region tier
		{use1, azEast, 0.09},   // AWS to internet
		{azEast, azUK, 0.05},   // Azure cross-continent
		{azEast, use1, 0.0875}, // Azure to internet
		{gUSE, gUSW, 0.02},     // GCP intra-continent
		{gUSE, gEU, 0.05},      // GCP US-EU
		{gUSE, gAS, 0.08},      // GCP US-Asia premium tier
		{gUSE, use1, 0.12},     // GCP to internet
	}
	for _, c := range cases {
		if got := EgressPerGB(c.from, c.to); got != c.want {
			t.Errorf("EgressPerGB(%v, %v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestEgressCostScalesWithBytes(t *testing.T) {
	from, to := region("aws:us-east-1"), region("aws:eu-west-1")
	oneGB := EgressCost(from, to, 1<<30)
	if math.Abs(oneGB-0.02) > 1e-12 {
		t.Errorf("1 GiB egress = %v, want 0.02", oneGB)
	}
	if got := EgressCost(from, to, 1<<29); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("0.5 GiB egress = %v, want 0.01", got)
	}
}

func TestFnComputeCost(t *testing.T) {
	// 1 GB for 10 s on Lambda: 10 * 16.67e-6.
	got := FnComputeCost(cloud.AWS, 1.0, 10*time.Second)
	if math.Abs(got-166.7e-6) > 1e-9 {
		t.Errorf("lambda 1GB*10s = %v", got)
	}
	// GCP is more expensive per GB-s than AWS (paper: Cloud Run pricier).
	if FnComputeCost(cloud.GCP, 1, time.Second) <= FnComputeCost(cloud.AWS, 1, time.Second) {
		t.Error("GCP GB-s should cost more than AWS")
	}
}

func TestVMCostMinimumBilling(t *testing.T) {
	short := VMCost(cloud.AWS, 10*time.Second)
	atMin := VMCost(cloud.AWS, 60*time.Second)
	if short != atMin {
		t.Errorf("sub-minimum uptime should bill the minimum: %v vs %v", short, atMin)
	}
	if VMCost(cloud.AWS, 2*time.Hour) <= atMin {
		t.Error("longer uptime must cost more")
	}
}

func TestBookForEveryProvider(t *testing.T) {
	for _, p := range cloud.Providers() {
		b := BookFor(p)
		if b.Provider != p {
			t.Errorf("BookFor(%v).Provider = %v", p, b.Provider)
		}
		if b.FnGBSecond <= 0 || b.KVWrite <= 0 || b.VMHourly <= 0 || b.EgressInternet <= 0 {
			t.Errorf("book for %v has zero prices: %+v", p, b)
		}
	}
}

func TestRTCFeeOnlyAWS(t *testing.T) {
	if BookFor(cloud.AWS).RTCPerGB != 0.015 {
		t.Error("AWS RTC fee should be $0.015/GB")
	}
	if BookFor(cloud.Azure).RTCPerGB != 0 || BookFor(cloud.GCP).RTCPerGB != 0 {
		t.Error("RTC fee applies only to AWS")
	}
}

func TestMeterAccumulatesAndMerges(t *testing.T) {
	m := NewMeter()
	m.Add("egress", 0.5)
	m.Add("egress", 0.25)
	m.Add("compute", 0.1)
	m.Add("zero", 0) // ignored
	if got := m.Item("egress"); got != 0.75 {
		t.Errorf("egress = %v", got)
	}
	if got := m.Total(); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("total = %v", got)
	}
	other := NewMeter()
	other.Add("compute", 0.4)
	m.Merge(other)
	if got := m.Item("compute"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("merged compute = %v", got)
	}
	bd := m.Breakdown()
	if len(bd) != 2 {
		t.Errorf("breakdown has %d items: %v", len(bd), bd)
	}
	if items := m.Items(); items[0] != "egress" {
		t.Errorf("items sorted desc, got %v", items)
	}
	m.Reset()
	if m.Total() != 0 {
		t.Error("reset should clear the meter")
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Add("x", 0.001)
			}
		}()
	}
	wg.Wait()
	if got := m.Item("x"); math.Abs(got-5.0) > 1e-9 {
		t.Errorf("concurrent total = %v, want 5.0", got)
	}
}
