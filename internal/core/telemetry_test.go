package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/objstore"
	"repro/internal/world"
)

// runTraced deploys a rule on a fresh world, replicates a few objects with
// tracing on, and returns the trace and metrics exports.
func runTraced(t *testing.T) (trace, metrics []byte) {
	t.Helper()
	w := world.New()
	if err := w.Region(src).Obj.CreateBucket("s", false); err != nil {
		t.Fatal(err)
	}
	if err := w.Region(dst).Obj.CreateBucket("d", false); err != nil {
		t.Fatal(err)
	}
	_, err := Deploy(w, Options{
		Rule:          engine.Rule{Src: src, Dst: dst, SrcBucket: "s", DstBucket: "d"},
		ProfileRounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Tracer.Enable()
	for _, key := range []string{"small", "large"} {
		size := int64(1 << 20)
		if key == "large" {
			size = 64 << 20
		}
		if _, err := w.Region(src).Obj.Put("s", key, objstore.BlobOfSize(size, 7)); err != nil {
			t.Fatal(err)
		}
	}
	w.Clock.Quiesce()

	var tb, mb bytes.Buffer
	if err := w.Tracer.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := w.Metrics.WriteText(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestTraceExportDeterministic checks the acceptance bar for the telemetry
// layer: two identical seeded runs must produce byte-identical trace and
// metrics exports.
func TestTraceExportDeterministic(t *testing.T) {
	t1, m1 := runTraced(t)
	t2, m2 := runTraced(t)
	if !bytes.Equal(t1, t2) {
		t.Error("trace exports of identical runs differ")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics exports of identical runs differ")
	}
}

// TestTraceCoversTaskWaterfall checks that every replication task exports a
// root span whose children cover notification, invocation, the transfer,
// and (for multipart plans) every part.
func TestTraceCoversTaskWaterfall(t *testing.T) {
	trace, metrics := runTraced(t)
	s := string(trace)
	for _, want := range []string{
		`"name":"task"`,
		`"name":"notify"`,
		`"name":"invoke"`,
		`"cat":"faas"`,
		`"name":"part-0"`,
		`"name":"leg-up"`,
		`"name":"mpu-complete"`,
		`"name":"kv:lock"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("trace export missing %s", want)
		}
	}
	// Both tasks became traces (one process metadata record each).
	if got := strings.Count(s, `"process_name"`); got != 2 {
		t.Errorf("trace has %d processes, want 2", got)
	}
	m := string(metrics)
	for _, want := range []string{
		"engine.tasks.ok 2",
		"faas.invocations",
		"objstore.put.seconds",
		"kvstore.writes",
		"net.leg.seconds",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics export missing %s", want)
		}
	}
}
