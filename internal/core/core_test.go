package core

import (
	"testing"
	"time"

	"repro/internal/changelog"
	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/world"
)

const (
	src = cloud.RegionID("aws:us-east-1")
	dst = cloud.RegionID("azure:eastus")
)

func deployed(t *testing.T, opts Options) (*world.World, *Service) {
	t.Helper()
	w := world.New()
	if err := w.Region(src).Obj.CreateBucket("s", false); err != nil {
		t.Fatal(err)
	}
	if err := w.Region(dst).Obj.CreateBucket("d", false); err != nil {
		t.Fatal(err)
	}
	if opts.Rule.Src == "" {
		opts.Rule = engine.Rule{Src: src, Dst: dst, SrcBucket: "s", DstBucket: "d"}
	}
	if opts.ProfileRounds == 0 {
		opts.ProfileRounds = 6
	}
	svc, err := Deploy(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, svc
}

func TestDeployWiresEverything(t *testing.T) {
	w, svc := deployed(t, Options{})
	if svc.Model == nil || svc.Planner == nil || svc.Engine == nil || svc.Logger == nil {
		t.Fatal("components missing")
	}
	// Profiled: the model answers for this rule.
	if _, err := svc.Model.ReplTime(src, dst, src, 1<<20, 1, true); err != nil {
		t.Fatalf("model unprofiled: %v", err)
	}
	// And events flow end to end.
	res, err := w.Region(src).Obj.Put("s", "k", objstore.BlobOfSize(1<<20, 1))
	if err != nil {
		t.Fatal(err)
	}
	w.Clock.Quiesce()
	got, err := w.Region(dst).Obj.Head("d", "k")
	if err != nil || got.ETag != res.ETag {
		t.Fatalf("replication broken: %v", err)
	}
	// The logger observed the task.
	if svc.Logger.Stats().Observed != 1 {
		t.Fatal("logger did not observe the task")
	}
}

func TestDeployRejectsBadConfigs(t *testing.T) {
	w := world.New()
	if _, err := Deploy(w, Options{Rule: engine.Rule{Src: src, Dst: src}}); err == nil {
		t.Error("same-region rule accepted")
	}
	if _, err := Deploy(w, Options{
		Rule:           engine.Rule{Src: src, Dst: dst, SrcBucket: "s", DstBucket: "d"},
		EnableBatching: true, // no SLO
	}); err == nil {
		t.Error("batching without SLO accepted")
	}
	if _, err := Deploy(w, Options{
		Rule: engine.Rule{Src: src, Dst: dst, SrcBucket: "missing", DstBucket: "d", ForceN: 1},
	}); err == nil {
		t.Error("missing bucket accepted")
	}
}

func TestForcedPlanSkipsProfiling(t *testing.T) {
	w := world.New()
	w.Region(src).Obj.CreateBucket("s", false)
	w.Region(dst).Obj.CreateBucket("d", false)
	before := w.Clock.Now()
	if _, err := Deploy(w, Options{
		Rule: engine.Rule{Src: src, Dst: dst, SrcBucket: "s", DstBucket: "d", ForceN: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if !w.Clock.Now().Equal(before) {
		t.Fatal("forced-plan deployment should not spend time profiling")
	}
}

func TestChangelogRequiresOptIn(t *testing.T) {
	_, svc := deployed(t, Options{})
	err := svc.RegisterChangelog(changelog.Log{Key: "k", ETag: "e", Op: changelog.OpCopy,
		Sources: []changelog.Source{{Key: "a", ETag: "ea"}}})
	if err == nil {
		t.Fatal("changelog registration without opt-in should fail")
	}
}

func TestSharedModelReused(t *testing.T) {
	w := world.New()
	m := model.New()
	w.Region(src).Obj.CreateBucket("s1", false)
	w.Region(src).Obj.CreateBucket("s2", false)
	w.Region(dst).Obj.CreateBucket("d1", false)
	w.Region(dst).Obj.CreateBucket("d2", false)
	if _, err := Deploy(w, Options{Model: m, ProfileRounds: 6,
		Rule: engine.Rule{Src: src, Dst: dst, SrcBucket: "s1", DstBucket: "d1"}}); err != nil {
		t.Fatal(err)
	}
	t1 := w.Clock.Now()
	if _, err := Deploy(w, Options{Model: m, ProfileRounds: 6,
		Rule: engine.Rule{Src: src, Dst: dst, SrcBucket: "s2", DstBucket: "d2"}}); err != nil {
		t.Fatal(err)
	}
	if !w.Clock.Now().Equal(t1) {
		t.Fatal("second deployment with a shared model should not re-profile the same pair")
	}
}

func TestBatchedServiceMeetsSLO(t *testing.T) {
	w, svc := deployed(t, Options{
		Rule:           engine.Rule{Src: src, Dst: dst, SrcBucket: "s", DstBucket: "d", SLO: 30 * time.Second},
		EnableBatching: true,
		ProfileRounds:  6,
	})
	if svc.Batcher == nil {
		t.Fatal("batcher missing")
	}
	for i := 0; i < 6; i++ {
		if _, err := w.Region(src).Obj.Put("s", "hot", objstore.BlobOfSize(8<<20, uint64(i)+1)); err != nil {
			t.Fatal(err)
		}
		w.Clock.Sleep(2 * time.Second)
	}
	w.Clock.Quiesce()
	recs := svc.Engine.Tracker.Records()
	if len(recs) != 6 {
		t.Fatalf("resolved %d of 6", len(recs))
	}
	for _, r := range recs {
		if r.Delay > 30*time.Second {
			t.Fatalf("SLO miss: %v", r.Delay)
		}
	}
	if st := svc.Batcher.Stats(); st.Dispatched >= st.Submitted {
		t.Fatalf("no coalescing: %+v", st)
	}
}
