// Package core assembles AReplica's components into a deployed service
// (§4, Figure 10): the offline profiler fits the performance model, the
// strategy planner turns it into SLO-compliant plans, the replication
// engine executes them, the logger keeps the model honest at runtime, and
// the optional changelog store and SLO-bounded batcher cut replication
// cost. Deploy wires one service to a source bucket's notifications.
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/antientropy"
	"repro/internal/batching"
	"repro/internal/changelog"
	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/fleetobs"
	"repro/internal/logger"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/planner"
	"repro/internal/profiler"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// Options configures a deployment.
type Options struct {
	Rule engine.Rule

	// EnableChangelog turns on changelog propagation (§5.4): applications
	// register hints via Service.RegisterChangelog and eligible versions
	// are mirrored without wide-area transfer.
	EnableChangelog bool
	// EnableBatching turns on SLO-bounded batching (§5.4, Algorithm 4);
	// it requires a positive Rule.SLO.
	EnableBatching bool
	// BatchEpsilon is the batcher's deadline safety margin (default 1s).
	BatchEpsilon time.Duration

	// Relays are optional overlay execution regions the planner may pick
	// (§6's extension); they are profiled alongside the rule's own paths.
	Relays []cloud.RegionID

	// EnableScrub attaches an anti-entropy scrubber to the rule. The
	// scrubber is constructed but not started: call Service.Scrubber.Start
	// (periodic loop) or RunUntilClean (driver-paced rounds) once the
	// workload is underway.
	EnableScrub bool
	// ScrubCadence is the interval between scrub rounds (0 derives it from
	// DivergenceSLO, or the package default).
	ScrubCadence time.Duration
	// DivergenceSLO is the declared bound on unrepaired divergence; see
	// antientropy.Config.
	DivergenceSLO time.Duration

	// ProfileRounds overrides the profiler's sampling effort (default 12).
	ProfileRounds int
	// Model, when non-nil, is used (and extended) instead of a fresh
	// model; deployments sharing region pairs share profiling work.
	Model *model.Model

	// OnTaskDone, when set, observes finished tasks in addition to the
	// logger.
	OnTaskDone func(engine.TaskResult)

	// EnableMonitor attaches a fleetobs SLO monitor to the rule. The
	// monitor polls from the engine's OnTaskDone hook (every finished task
	// re-evaluates the rule's burn rates on the virtual clock); drivers
	// with quiet phases should also call Service.Monitor.Poll at their
	// loop points so fault windows where nothing completes still alert.
	EnableMonitor bool
	// MonitorSLO declares the rule's objectives (zero fields default; see
	// fleetobs.SLO).
	MonitorSLO fleetobs.SLO
	// Events, when non-nil, receives the monitor's structured alert
	// events; several services may share one log.
	Events *fleetobs.EventLog

	// DispatchGate, when set, routes notification-driven dispatches
	// through an external admission gate (the fleet scheduler); see
	// engine.SetDispatchGate. Mutually exclusive with EnableBatching,
	// whose handler dispatches past the engine's gate hook.
	DispatchGate func(ev objstore.Event, run func(done func()))
}

// Service is one deployed replication rule.
type Service struct {
	W       *world.World
	Rule    engine.Rule
	Model   *model.Model
	Planner *planner.Planner
	Engine  *engine.Engine
	Logger  *logger.Logger

	Batcher    *batching.Batcher
	Changelogs *changelog.Store
	Scrubber   *antientropy.Scrubber
	Monitor    *fleetobs.Monitor

	estMu    sync.Mutex
	estCache map[int64]time.Duration
}

// Deploy profiles (if needed), builds, and wires a Service to the source
// bucket's notifications. Buckets must already exist.
func Deploy(w *world.World, opts Options) (*Service, error) {
	rule := opts.Rule.WithDefaults()
	if rule.Src == rule.Dst {
		return nil, fmt.Errorf("core: source and destination regions are both %s", rule.Src)
	}
	if opts.EnableBatching && rule.SLO <= 0 {
		return nil, fmt.Errorf("core: batching requires a positive SLO")
	}
	if opts.EnableBatching && opts.DispatchGate != nil {
		return nil, fmt.Errorf("core: batching and a dispatch gate are mutually exclusive")
	}

	m := opts.Model
	if m == nil {
		m = model.New()
	}
	if rule.ForceN == 0 {
		prof := profiler.New(w)
		if opts.ProfileRounds > 0 {
			prof.Rounds = opts.ProfileRounds
		}
		prof.FitRuleWithRelays(m, rule.Src, rule.Dst, opts.Relays)
	}

	pl := planner.New(m)
	pl.Relays = opts.Relays
	pl.ExecLimitFor = func(loc cloud.RegionID) time.Duration {
		return w.Region(loc).Fn.Config().ExecLimit
	}
	eng := engine.New(w, pl, rule)
	if opts.DispatchGate != nil {
		eng.SetDispatchGate(opts.DispatchGate)
	}
	lg := logger.New(m, rule.Src, rule.Dst)
	userHook := opts.OnTaskDone

	s := &Service{
		W: w, Rule: rule, Model: m, Planner: pl, Engine: eng, Logger: lg,
		estCache: make(map[int64]time.Duration),
	}
	eng.OnTaskDone = func(r engine.TaskResult) {
		lg.Observe(r)
		if userHook != nil {
			userHook(r)
		}
		// Every completed task re-evaluates the rule's SLOs at the task's
		// virtual completion instant (the tracker resolves before the
		// engine reports, so this poll sees the fresh lag record).
		s.Monitor.Poll()
	}

	if opts.EnableChangelog {
		s.Changelogs = changelog.NewStore(w.Region(rule.Src).KV)
		applier := &changelog.Applier{
			Dst: w.Region(rule.Dst).Obj, DstBucket: rule.DstBucket,
			Origin: engine.OriginFor(rule.Src, rule.SrcBucket, rule.Dst, rule.DstBucket),
		}
		eng.TryChangelog = func(sp *telemetry.Span, key, etag string) bool {
			log, ok := s.Changelogs.Lookup(key, etag)
			if !ok {
				return false
			}
			// The changelog hint propagates piggybacked on its own
			// notification copy (§5.4), so the notify-flaky chaos rates
			// apply to it too: a dropped hint is a lookup miss (the caller
			// falls back to full replication), and a duplicated one delivers
			// — and applies — a second time, which Applier.Apply's
			// idempotence guard must turn into a no-op.
			v := w.Chaos.NotifyChangelog(string(rule.Src))
			if v.Drop {
				sp.Set("op", string(log.Op)).Set("chaos-dropped", true)
				return false
			}
			applied := applier.Apply(log)
			sp.Set("op", string(log.Op)).Set("applied", applied)
			if applied && v.Duplicate {
				w.Clock.Delay(v.DupExtra, func() { applier.Apply(log) })
			}
			return applied
		}
	}
	if opts.EnableScrub {
		s.Scrubber = antientropy.New(eng, antientropy.Config{
			Cadence:       opts.ScrubCadence,
			DivergenceSLO: opts.DivergenceSLO,
		})
	}
	if opts.EnableMonitor {
		mc := fleetobs.MonitorConfig{
			Rule:     eng.RuleID(),
			Dest:     string(rule.Dst),
			Now:      w.Clock.Now,
			SLO:      opts.MonitorSLO,
			Log:      opts.Events,
			Tracker:  eng.Tracker,
			LagHist:  eng.LagHistogram(),
			DLQDepth: func() int { return len(eng.DLQ()) },
		}
		if s.Scrubber != nil {
			mc.Divergence = s.Scrubber.SLOViolationCount
		}
		s.Monitor = fleetobs.NewMonitor(mc)
	}

	handler := eng.HandleEvent
	if opts.EnableBatching {
		head := func(key string) (objstore.Meta, error) {
			return w.Region(rule.Src).Obj.Head(rule.SrcBucket, key)
		}
		s.Batcher = batching.New(w.Clock, rule.SLO, opts.BatchEpsilon, s.estimate, head, eng.Dispatch)
		// Delayed tasks run on the source region's serverless workflow
		// service (§7), so their Wait states are billed.
		s.Batcher.SetDelayer(w.Region(rule.Src).Wf.Delay)
		handler = func(ev objstore.Event) {
			// Same filters as Engine.HandleEvent: key prefix, plus the
			// origin loop-breaker so a sibling rule's replica writes in an
			// active-active pair never feed back through the batcher.
			if !eng.Matches(ev.Key) || !eng.AcceptsOrigin(ev.Origin) {
				return
			}
			// Every source version is registered for delay accounting even
			// if batching later coalesces it away; duplicate deliveries
			// (at-least-once notifications) are dropped here.
			if !eng.Tracker.OnSource(ev) {
				return
			}
			s.Batcher.Submit(ev)
		}
	}
	if err := w.Region(rule.Src).Obj.Subscribe(rule.SrcBucket, handler); err != nil {
		return nil, fmt.Errorf("core: subscribing to %s/%s: %w", rule.Src, rule.SrcBucket, err)
	}
	return s, nil
}

// estimate predicts the fastest replication time for a size (the T_rep
// term of Algorithm 4), cached per chunk count.
func (s *Service) estimate(size int64) time.Duration {
	chunks := s.Model.Chunks(size)
	s.estMu.Lock()
	if d, ok := s.estCache[chunks]; ok {
		s.estMu.Unlock()
		return d
	}
	s.estMu.Unlock()
	p, err := s.Planner.PlanWith(s.Rule.Src, s.Rule.Dst, size, 0, s.Rule.Percentile, s.Engine.PlanOpts())
	d := 5 * time.Second
	if err == nil {
		d = simclock.Seconds(p.EstSeconds)
	}
	s.estMu.Lock()
	s.estCache[chunks] = d
	s.estMu.Unlock()
	return d
}

// RegisterChangelog records a changelog hint for an upcoming or just-made
// PUT (requires EnableChangelog).
func (s *Service) RegisterChangelog(l changelog.Log) error {
	if s.Changelogs == nil {
		return fmt.Errorf("core: changelog propagation is not enabled")
	}
	return s.Changelogs.Register(l)
}

// Tracker exposes the engine's delay records.
func (s *Service) Tracker() *engine.Tracker { return s.Engine.Tracker }
