package core

import (
	"sync"
	"testing"

	"repro/internal/changelog"
	"repro/internal/chaos"
	"repro/internal/objstore"
	"repro/internal/world"
)

// watchDstDups counts destination final writes that rewrite a key with the
// ETag it already had — the signature of a duplicated changelog apply or a
// redundant re-replication. Converged chaos runs must keep this at zero.
// Deliveries are deduped by Seq first: notify-dup chaos replays the
// notification of a single write, which is not a duplicate write.
func watchDstDups(t *testing.T, w *world.World) func() int {
	t.Helper()
	var (
		mu   sync.Mutex
		last = map[string]string{}
		seen = map[uint64]bool{}
		dups int
	)
	if err := w.Region(dst).Obj.Subscribe("d", func(ev objstore.Event) {
		if ev.Type != objstore.EventPut {
			return
		}
		mu.Lock()
		if !seen[ev.Seq] {
			seen[ev.Seq] = true
			if last[ev.Key] == ev.ETag {
				dups++
			}
			last[ev.Key] = ev.ETag
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return func() int {
		mu.Lock()
		defer mu.Unlock()
		return dups
	}
}

// A duplicated changelog delivery (notify-dup chaos on the hint's own
// notification copy, §5.4) must not issue a second final write at the
// destination: Applier.Apply's HEAD idempotence guard turns the replayed
// apply into a no-op.
func TestChangelogDuplicateDeliveryIdempotent(t *testing.T) {
	w, svc := deployed(t, Options{EnableChangelog: true})
	resA, err := w.Region(src).Obj.Put("s", "a", objstore.BlobOfSize(1<<20, 7))
	if err != nil {
		t.Fatal(err)
	}
	w.Clock.Quiesce()
	dups := watchDstDups(t, w)

	w.SetChaos(chaos.Profile{Name: "dup-all", Seed: "1", NotifyDupRate: 1})
	defer w.SetChaos(chaos.Profile{})

	resB, err := w.Region(src).Obj.Copy("s", "a", "s", "b", resA.ETag)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterChangelog(changelog.Log{
		Key: "b", ETag: resB.ETag, Op: changelog.OpCopy,
		Sources: []changelog.Source{{Key: "a", ETag: resA.ETag}},
	}); err != nil {
		t.Fatal(err)
	}
	w.Clock.Quiesce()

	got, err := w.Region(dst).Obj.Head("d", "b")
	if err != nil || got.ETag != resB.ETag {
		t.Fatalf("destination diverged: %v %+v", err, got)
	}
	if v := w.Metrics.Counter("engine.tasks.changelog").Value(); v != 1 {
		t.Fatalf("engine.tasks.changelog = %d, want 1", v)
	}
	if v := w.Metrics.Counter("chaos.injected.notify_dup").Value(); v < 2 {
		t.Fatalf("chaos.injected.notify_dup = %d, want >= 2 (event + hint streams)", v)
	}
	if n := dups(); n != 0 {
		t.Fatalf("%d duplicate final writes at destination, want 0", n)
	}
}

// A dropped changelog hint delivery must degrade, not diverge: the lookup
// behaves as a miss and the engine falls back to full replication, so the
// destination still converges — just without the near-zero-cost path.
func TestChangelogDropFallsBackToFullReplication(t *testing.T) {
	w, svc := deployed(t, Options{EnableChangelog: true})
	resA, err := w.Region(src).Obj.Put("s", "a", objstore.BlobOfSize(1<<20, 8))
	if err != nil {
		t.Fatal(err)
	}
	w.Clock.Quiesce()

	w.SetChaos(chaos.Profile{Name: "drop-all", Seed: "1", NotifyLossRate: 1})
	defer w.SetChaos(chaos.Profile{})

	resB, err := w.Region(src).Obj.Copy("s", "a", "s", "b", resA.ETag)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterChangelog(changelog.Log{
		Key: "b", ETag: resB.ETag, Op: changelog.OpCopy,
		Sources: []changelog.Source{{Key: "a", ETag: resA.ETag}},
	}); err != nil {
		t.Fatal(err)
	}
	w.Clock.Quiesce()
	if _, err := w.Region(dst).Obj.Head("d", "b"); err == nil {
		t.Fatal("PUT notification should have been dropped")
	}

	// Backfill rediscovers the missing key; its replication consults the
	// changelog, whose own delivery is then chaos-dropped too.
	scheduled, err := svc.Engine.Backfill()
	if err != nil {
		t.Fatal(err)
	}
	if scheduled != 1 {
		t.Fatalf("backfill scheduled %d, want 1 (only the missing key)", scheduled)
	}
	w.Clock.Quiesce()

	got, err := w.Region(dst).Obj.Head("d", "b")
	if err != nil || got.ETag != resB.ETag {
		t.Fatalf("fallback replication failed: %v %+v", err, got)
	}
	if v := w.Metrics.Counter("engine.tasks.changelog").Value(); v != 0 {
		t.Fatalf("engine.tasks.changelog = %d, want 0 (hint was dropped)", v)
	}
	if v := w.Metrics.Counter("chaos.injected.notify_loss").Value(); v < 2 {
		t.Fatalf("chaos.injected.notify_loss = %d, want >= 2 (event + hint streams)", v)
	}
}
