package vmsim

import (
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newManager(idle time.Duration) (*simclock.Clock, *Manager, *pricing.Meter) {
	clk := simclock.New(epoch)
	meter := pricing.NewMeter()
	return clk, New(clk, cloud.MustLookup("aws:us-east-1"), meter, idle), meter
}

func TestProvisioningTakesTensOfSeconds(t *testing.T) {
	clk, m, _ := newManager(0)
	start := clk.Now()
	vm, provisioned := m.Acquire()
	if !provisioned {
		t.Fatal("first acquire should provision")
	}
	elapsed := clk.Since(start)
	// ~31 s provisioning + ~26 s container startup (Figure 4).
	if elapsed < 30*time.Second || elapsed > 2*time.Minute {
		t.Fatalf("provisioning took %v, want ~57s", elapsed)
	}
	m.Release(vm)
	clk.Quiesce()
}

func TestImmediateTerminationBillsMinimum(t *testing.T) {
	clk, m, meter := newManager(0)
	vm, _ := m.Acquire()
	m.Release(vm) // terminates immediately
	clk.Quiesce()
	got := meter.Item("vm:compute")
	uptime := clk.Now().Sub(vm.StartedAt)
	want := pricing.VMCost(cloud.AWS, uptime)
	if got != want {
		t.Fatalf("billed %v, want %v", got, want)
	}
	if got <= 0 {
		t.Fatal("vm cost must be positive")
	}
}

func TestKeepAliveReuse(t *testing.T) {
	clk, m, _ := newManager(5 * time.Minute)
	vm, _ := m.Acquire()
	m.Release(vm)
	clk.Sleep(time.Minute) // within keep-alive window
	start := clk.Now()
	vm2, provisioned := m.Acquire()
	if provisioned || vm2 != vm {
		t.Fatal("should reuse the warm VM")
	}
	if clk.Since(start) > time.Second {
		t.Fatal("warm acquire should be immediate")
	}
	m.Release(vm2)
	clk.Quiesce()
	st := m.Stats()
	if st.Provisioned != 1 || st.Reused != 1 || st.Terminated != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIdleReaperShutsDownAfterTimeout(t *testing.T) {
	clk, m, meter := newManager(20 * time.Second)
	vm, _ := m.Acquire()
	m.Release(vm)
	clk.Quiesce() // reaper fires at +20 s idle
	if st := m.Stats(); st.Terminated != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if meter.Item("vm:compute") <= 0 {
		t.Fatal("terminated VM should be billed")
	}
	// After expiry a new acquire must provision again.
	if _, provisioned := m.Acquire(); !provisioned {
		t.Fatal("expired VM should not be reusable")
	}
}

func TestReaperCancelledByReuse(t *testing.T) {
	clk, m, _ := newManager(30 * time.Second)
	vm, _ := m.Acquire()
	m.Release(vm)
	clk.Sleep(10 * time.Second)
	vm2, provisioned := m.Acquire() // reuse before the reaper fires
	if provisioned {
		t.Fatal("expected reuse")
	}
	clk.Sleep(time.Minute) // original reaper deadline passes while busy
	if vm2.dead {
		t.Fatal("reaper killed a busy VM")
	}
	m.Release(vm2)
	clk.Quiesce()
	if st := m.Stats(); st.Terminated != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLongerUptimeCostsMore(t *testing.T) {
	clk, m, meter := newManager(0)
	vm, _ := m.Acquire()
	clk.Sleep(10 * time.Minute) // long task
	m.Release(vm)
	clk.Quiesce()
	long := meter.Item("vm:compute")

	clk2, m2, meter2 := newManager(0)
	vm2, _ := m2.Acquire()
	m2.Release(vm2)
	clk2.Quiesce()
	short := meter2.Item("vm:compute")
	if long <= short {
		t.Fatalf("10-minute VM (%v) should cost more than instant release (%v)", long, short)
	}
}

func TestTerminateAll(t *testing.T) {
	clk, m, _ := newManager(time.Hour)
	a, _ := m.Acquire()
	m.Release(a)
	m.TerminateAll()
	if st := m.Stats(); st.Terminated != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Double termination must not double-bill.
	m.TerminateAll()
	if st := m.Stats(); st.Terminated != 1 {
		t.Fatalf("stats after second TerminateAll = %+v", st)
	}
	clk.Quiesce()
}
