// Package vmsim simulates VM provisioning for the Skyplane baseline: slow
// instance provisioning (~31 s), container deployment on top (~26 s),
// hourly billing with a minimum billable duration, and optional keep-alive
// so an idle VM can serve later transfers without re-provisioning
// (Figure 5's 5 min / 1 min / 20 s shutdown policies).
package vmsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// VM is one provisioned virtual machine.
type VM struct {
	ID        string
	Region    cloud.Region
	StartedAt time.Time

	idleSince time.Time
	idleGen   int // invalidates pending reapers when the VM is reused
	dead      bool
}

// Stats counts manager activity.
type Stats struct {
	Provisioned int64
	Reused      int64
	Terminated  int64
}

// Manager provisions and pools VMs in one region.
type Manager struct {
	clock  *simclock.Clock
	region cloud.Region
	meter  *pricing.Meter

	// ProvisionTime and ContainerTime are the startup phases of Figure 4.
	ProvisionTime stats.Normal
	ContainerTime stats.Normal
	// IdleTimeout is how long a released VM stays warm before automatic
	// shutdown. Zero terminates immediately on release.
	IdleTimeout time.Duration

	mu    sync.Mutex
	rng   *rand.Rand
	idle  []*VM
	next  int
	stats Stats
}

// New returns a Manager for region with the calibrated startup times.
func New(clock *simclock.Clock, region cloud.Region, meter *pricing.Meter, idleTimeout time.Duration) *Manager {
	return &Manager{
		clock:         clock,
		region:        region,
		meter:         meter,
		ProvisionTime: stats.N(31.0, 4.0),
		ContainerTime: stats.N(26.0, 3.0),
		IdleTimeout:   idleTimeout,
		rng:           simrand.New("vmsim", string(region.ID())),
	}
}

// Stats returns a snapshot of activity counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Acquire returns a ready VM, reusing an idle one when available or
// provisioning a new one (the caller blocks through provisioning and
// container startup). provisioned reports whether a fresh VM was created.
func (m *Manager) Acquire() (vm *VM, provisioned bool) {
	m.mu.Lock()
	if n := len(m.idle); n > 0 {
		vm = m.idle[n-1]
		m.idle = m.idle[:n-1]
		vm.idleGen++
		m.stats.Reused++
		m.mu.Unlock()
		return vm, false
	}
	m.next++
	m.stats.Provisioned++
	id := fmt.Sprintf("%s/vm-%d", m.region.ID(), m.next)
	prov := m.ProvisionTime.Sample(m.rng)
	cont := m.ContainerTime.Sample(m.rng)
	m.mu.Unlock()
	if prov < 5 {
		prov = 5
	}
	if cont < 3 {
		cont = 3
	}
	m.clock.Sleep(simclock.Seconds(prov + cont))
	return &VM{ID: id, Region: m.region, StartedAt: m.clock.Now().Add(-simclock.Seconds(prov + cont))}, true
}

// Release returns the VM to the manager. With a zero IdleTimeout it is
// terminated immediately; otherwise a reaper shuts it down if it is still
// idle after the timeout.
func (m *Manager) Release(vm *VM) {
	if m.IdleTimeout <= 0 {
		m.terminate(vm)
		return
	}
	m.mu.Lock()
	vm.idleSince = m.clock.Now()
	vm.idleGen++
	gen := vm.idleGen
	m.idle = append(m.idle, vm)
	m.mu.Unlock()
	m.clock.Delay(m.IdleTimeout, func() {
		m.mu.Lock()
		if vm.dead || vm.idleGen != gen {
			m.mu.Unlock()
			return
		}
		// Still idle since the release that armed this reaper: remove from
		// the pool and terminate.
		for i, w := range m.idle {
			if w == vm {
				m.idle = append(m.idle[:i], m.idle[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		m.terminate(vm)
	})
}

// terminate bills the VM's uptime and marks it dead.
func (m *Manager) terminate(vm *VM) {
	m.mu.Lock()
	if vm.dead {
		m.mu.Unlock()
		return
	}
	vm.dead = true
	m.stats.Terminated++
	m.mu.Unlock()
	uptime := m.clock.Now().Sub(vm.StartedAt)
	m.meter.Add("vm:compute", pricing.VMCost(m.region.Provider, uptime))
}

// TerminateAll shuts down every idle VM immediately (end of experiment).
func (m *Manager) TerminateAll() {
	m.mu.Lock()
	vms := m.idle
	m.idle = nil
	m.mu.Unlock()
	for _, vm := range vms {
		m.terminate(vm)
	}
}
