// Package retry provides the typed retry policies the replication stack
// uses to survive injected (and modelled) transient faults: exponential
// backoff with seeded jitter, per-layer attempt budgets, and deadline
// propagation. Two layers use it with different budgets — the engine's
// task-level attempt loop (optimistic-validation retries, §6) and the
// request level (an SDK retrying one cloud API call). All waiting happens
// on the virtual clock, so retries consume simulated time exactly as they
// would wall time.
package retry

import (
	"errors"
	"math/rand"
	"time"

	"repro/internal/simclock"
)

// ErrDeadlineExceeded is returned by Do when the deadline passes before
// an attempt succeeds.
var ErrDeadlineExceeded = errors.New("retry: deadline exceeded")

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops immediately and returns the underlying
// error — for failures retrying cannot fix (missing keys, failed
// preconditions). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err: err}
}

// Policy is one layer's retry budget and backoff shape. The zero Policy
// is "unset"; fill it with Merge or use a package default.
type Policy struct {
	// MaxAttempts bounds the total tries (first attempt included).
	MaxAttempts int
	// Base is the backoff before the first retry; each further retry
	// multiplies it by Multiplier, capped at Max.
	Base       time.Duration
	Max        time.Duration
	Multiplier float64
	// Jitter randomizes each wait over [1-Jitter, 1] of its nominal value
	// (full-jitter style, bounded below so waits never collapse to zero).
	Jitter float64
}

// TaskDefault is the engine's task-level budget: a handful of attempts
// spaced out to ride through brief storms without hammering a struggling
// destination.
func TaskDefault() Policy {
	return Policy{MaxAttempts: 4, Base: 500 * time.Millisecond, Max: 8 * time.Second, Multiplier: 2, Jitter: 0.5}
}

// RequestDefault is the per-request budget of a cloud SDK: quick,
// tightly-bounded retries of a single API call.
func RequestDefault() Policy {
	return Policy{MaxAttempts: 3, Base: 100 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.5}
}

// IsZero reports whether the policy is unset.
func (p Policy) IsZero() bool { return p.MaxAttempts == 0 }

// Merge fills unset fields from def.
func (p Policy) Merge(def Policy) Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.Base <= 0 {
		p.Base = def.Base
	}
	if p.Max <= 0 {
		p.Max = def.Max
	}
	if p.Multiplier <= 1 {
		p.Multiplier = def.Multiplier
	}
	if p.Jitter <= 0 || p.Jitter > 1 {
		p.Jitter = def.Jitter
	}
	return p
}

// Backoff returns the wait before retry number retry (0-based: the wait
// after the first failed attempt). Jitter draws from rng so backoff
// schedules are deterministic per seeded caller; a nil rng applies none.
func (p Policy) Backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.Base
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 0; i < retry; i++ {
		d = simclock.Scale(d, p.Multiplier)
		if p.Max > 0 && d >= p.Max {
			d = p.Max
			break
		}
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if rng != nil && p.Jitter > 0 {
		d = simclock.Scale(d, 1-p.Jitter*rng.Float64())
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// Do runs fn under the policy: up to MaxAttempts tries, sleeping the
// backoff on clock between failures, never starting an attempt past
// deadline (zero deadline means none). It returns nil on the first
// success, the last error on exhaustion, or ErrDeadlineExceeded (wrapping
// the last error, if any) when the deadline cuts the budget short.
func Do(clock *simclock.Clock, rng *rand.Rand, p Policy, deadline time.Time, fn func(attempt int) error) error {
	return DoObserved(clock, rng, p, deadline, nil, fn)
}

// DoObserved is Do with a wait observer: onWait (when non-nil) is called
// just before each backoff sleep with the 0-based retry number and the
// wait about to be consumed. The engine hangs telemetry spans off it so
// request-level retry stalls are attributable on a task's critical path;
// the observer must not block.
func DoObserved(clock *simclock.Clock, rng *rand.Rand, p Policy, deadline time.Time,
	onWait func(retry int, wait time.Duration), fn func(attempt int) error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			wait := p.Backoff(attempt-1, rng)
			if onWait != nil {
				onWait(attempt-1, wait)
			}
			clock.Sleep(wait)
		}
		if !deadline.IsZero() && clock.Now().After(deadline) {
			if last == nil {
				return ErrDeadlineExceeded
			}
			return errors.Join(ErrDeadlineExceeded, last)
		}
		if last = fn(attempt); last == nil {
			return nil
		}
		var p permanentError
		if errors.As(last, &p) {
			return p.err
		}
	}
	return last
}
