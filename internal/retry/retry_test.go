package retry

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/simrand"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestRetryBackoffShape checks the exponential growth, the cap, and the
// jitter bounds of the backoff schedule.
func TestRetryBackoffShape(t *testing.T) {
	p := Policy{MaxAttempts: 10, Base: time.Second, Max: 8 * time.Second, Multiplier: 2, Jitter: 0}
	for i, want := range []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second,
	} {
		if got := p.Backoff(i, nil); got != want {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, want)
		}
	}

	p.Jitter = 0.5
	rng := simrand.New("retry-test")
	for i := 0; i < 100; i++ {
		got := p.Backoff(2, rng) // nominal 4s
		if got < 2*time.Second || got > 4*time.Second {
			t.Fatalf("jittered Backoff(2) = %v, want within [2s, 4s]", got)
		}
	}
}

// TestRetryBackoffDeterministic: identical seeds yield identical jittered
// schedules (the chaos-determinism contract reaches into backoff waits).
func TestRetryBackoffDeterministic(t *testing.T) {
	p := TaskDefault()
	a, b := simrand.New("retry-det"), simrand.New("retry-det")
	for i := 0; i < 50; i++ {
		if x, y := p.Backoff(i%4, a), p.Backoff(i%4, b); x != y {
			t.Fatalf("draw %d: %v != %v", i, x, y)
		}
	}
}

// TestRetryDoConsumesVirtualClock verifies Do's waits happen on the
// simulated clock: three failures under a no-jitter policy advance
// virtual time by exactly base+2*base.
func TestRetryDoConsumesVirtualClock(t *testing.T) {
	clk := simclock.New(epoch)
	p := Policy{MaxAttempts: 3, Base: time.Second, Max: 8 * time.Second, Multiplier: 2, Jitter: 0}
	fail := errors.New("transient")
	attempts := 0
	var elapsed time.Duration
	clk.Go(func() {
		start := clk.Now()
		_ = Do(clk, nil, p, time.Time{}, func(int) error { attempts++; return fail })
		elapsed = clk.Now().Sub(start)
	})
	clk.Quiesce()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if want := 3 * time.Second; elapsed != want {
		t.Fatalf("virtual time consumed = %v, want %v", elapsed, want)
	}
}

// TestRetryDoStopsOnSuccessAndPermanent covers the early exits.
func TestRetryDoStopsOnSuccessAndPermanent(t *testing.T) {
	clk := simclock.New(epoch)
	p := RequestDefault()

	n := 0
	clk.Go(func() {
		if err := Do(clk, nil, p, time.Time{}, func(int) error {
			n++
			if n < 2 {
				return errors.New("transient")
			}
			return nil
		}); err != nil {
			t.Errorf("Do = %v, want success on second attempt", err)
		}
	})
	clk.Quiesce()
	if n != 2 {
		t.Fatalf("attempts = %d, want 2", n)
	}

	sentinel := errors.New("precondition failed")
	n = 0
	clk.Go(func() {
		err := Do(clk, nil, p, time.Time{}, func(int) error { n++; return Permanent(sentinel) })
		if !errors.Is(err, sentinel) {
			t.Errorf("Do = %v, want the unwrapped sentinel", err)
		}
	})
	clk.Quiesce()
	if n != 1 {
		t.Fatalf("permanent error retried: %d attempts", n)
	}

	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
}

// TestRetryDoDeadline verifies deadline propagation: no attempt starts
// past the deadline and the error reports both causes.
func TestRetryDoDeadline(t *testing.T) {
	clk := simclock.New(epoch)
	p := Policy{MaxAttempts: 10, Base: 2 * time.Second, Max: 2 * time.Second, Multiplier: 2, Jitter: 0}
	fail := errors.New("transient")
	n := 0
	clk.Go(func() {
		deadline := clk.Now().Add(3 * time.Second)
		err := Do(clk, nil, p, deadline, func(int) error { n++; return fail })
		if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, fail) {
			t.Errorf("Do = %v, want deadline error wrapping the last failure", err)
		}
	})
	clk.Quiesce()
	// Attempts at t=0 and t=2s run; the one due at t=4s is past the 3s
	// deadline and must not start.
	if n != 2 {
		t.Fatalf("attempts = %d, want 2 (deadline must cut the budget)", n)
	}
}

// TestRetryPolicyMerge covers default filling.
func TestRetryPolicyMerge(t *testing.T) {
	def := TaskDefault()
	got := Policy{MaxAttempts: 7}.Merge(def)
	if got.MaxAttempts != 7 || got.Base != def.Base || got.Multiplier != def.Multiplier {
		t.Fatalf("Merge = %+v", got)
	}
	if (Policy{}).Merge(def) != def {
		t.Fatal("zero policy must merge to the default")
	}
	if !(Policy{}).IsZero() || def.IsZero() {
		t.Fatal("IsZero misreports")
	}
}
