package logger

import (
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/stats"
)

const (
	src = cloud.RegionID("aws:us-east-1")
	dst = cloud.RegionID("gcp:us-east1")
)

func fitted() *model.Model {
	m := model.New()
	m.SetLoc(src, model.LocParams{I: stats.N(0.01, 0.002), D: stats.N(0.3, 0.05), P: stats.N(0.1, 0.02)})
	m.SetPath(model.PathKey{Src: src, Dst: dst, Loc: src},
		model.PathParams{S: stats.N(0.3, 0.05),
			C:  model.ChunkTime{Mu: 0.1, Between: 0.015, Within: 0.015},
			Cp: model.ChunkTime{Mu: 0.11, Between: 0.015, Within: 0.015}})
	return m
}

func result(predMean, actual float64) engine.TaskResult {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return engine.TaskResult{
		Key: "k", Size: 64 << 20, OK: true,
		Plan:  planner.Plan{N: 4, Loc: src, EstMean: predMean},
		Start: start,
		End:   start.Add(time.Duration(actual * float64(time.Second))),
	}
}

func TestAccuratePredictionsNoRefresh(t *testing.T) {
	m := fitted()
	lg := New(m, src, dst)
	before, _ := m.Path(model.PathKey{Src: src, Dst: dst, Loc: src})
	for i := 0; i < 50; i++ {
		lg.Observe(result(2.0, 2.05)) // within 3% of the prediction
	}
	if st := lg.Stats(); st.Refreshes != 0 || st.Observed != 50 {
		t.Fatalf("stats = %+v", st)
	}
	after, _ := m.Path(model.PathKey{Src: src, Dst: dst, Loc: src})
	if before != after {
		t.Fatal("parameters changed without deviation")
	}
}

func TestPersistentDeviationTriggersRefresh(t *testing.T) {
	m := fitted()
	lg := New(m, src, dst)
	before, _ := m.Path(model.PathKey{Src: src, Dst: dst, Loc: src})
	// The link got 2x slower than the model believes.
	for i := 0; i < 20; i++ {
		lg.Observe(result(2.0, 4.0))
	}
	st := lg.Stats()
	if st.Refreshes == 0 {
		t.Fatal("persistent 2x deviation should refresh the model")
	}
	after, _ := m.Path(model.PathKey{Src: src, Dst: dst, Loc: src})
	if after.C.Mu <= before.C.Mu {
		t.Fatalf("C should scale up: %v -> %v", before.C.Mu, after.C.Mu)
	}
	if after.Cp.Mu <= before.Cp.Mu || after.S.Mu <= before.S.Mu {
		t.Fatal("Cp and S should scale up too")
	}
}

func TestSpeedupAlsoRefreshes(t *testing.T) {
	m := fitted()
	lg := New(m, src, dst)
	before, _ := m.Path(model.PathKey{Src: src, Dst: dst, Loc: src})
	for i := 0; i < 20; i++ {
		lg.Observe(result(4.0, 2.0)) // link got faster
	}
	after, _ := m.Path(model.PathKey{Src: src, Dst: dst, Loc: src})
	if after.C.Mu >= before.C.Mu {
		t.Fatal("C should scale down after persistent speedup")
	}
}

func TestTransientSpikeDoesNotRefresh(t *testing.T) {
	m := fitted()
	lg := New(m, src, dst)
	// One bad task among accurate ones: the EWMA should absorb it.
	for i := 0; i < 6; i++ {
		lg.Observe(result(2.0, 2.0))
	}
	lg.Observe(result(2.0, 8.0))
	for i := 0; i < 6; i++ {
		lg.Observe(result(2.0, 2.0))
	}
	if st := lg.Stats(); st.Refreshes != 0 {
		t.Fatalf("transient spike refreshed the model: %+v", st)
	}
}

func TestSkipsNonTasks(t *testing.T) {
	lg := New(fitted(), src, dst)
	r := result(2.0, 4.0)
	r.OK = false
	lg.Observe(r)
	r = result(2.0, 4.0)
	r.Changelog = true
	lg.Observe(r)
	r = result(0, 4.0) // no prediction
	lg.Observe(r)
	if st := lg.Stats(); st.Observed != 0 {
		t.Fatalf("ineligible results observed: %+v", st)
	}
}

func TestHistoryRecorded(t *testing.T) {
	lg := New(fitted(), src, dst)
	lg.Observe(result(2.0, 2.5))
	h := lg.History()
	if len(h) != 1 || h[0].Predicted != 2.0 || h[0].Actual != 2.5 || h[0].N != 4 {
		t.Fatalf("history = %+v", h)
	}
}

func TestRefreshOnUnknownPathIsSafe(t *testing.T) {
	m := fitted()
	lg := New(m, src, dst)
	r := result(2.0, 8.0)
	r.Plan.Loc = cloud.RegionID("azure:eastus") // no params for this loc
	for i := 0; i < 20; i++ {
		lg.Observe(r)
	}
	// Must not panic; refresh against a missing path is a no-op.
}
