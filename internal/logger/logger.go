// Package logger implements AReplica's runtime logger (§4): it tracks the
// replication time of completed tasks against the performance model's
// predictions and, when a significant deviation persists, refreshes the
// model's path parameters (triggering Monte-Carlo resampling on demand)
// so the model stays accurate as inter-region transfer rates drift.
package logger

import (
	"math"
	"sync"

	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// Observation pairs a task's predicted and measured replication time.
type Observation struct {
	Loc       cloud.RegionID
	N         int
	Size      int64
	Predicted float64 // model mean, seconds
	Actual    float64 // measured T_rep, seconds
}

// Stats is a snapshot of logger activity counters.
type Stats struct {
	Observed  int64
	Refreshes int64
}

// Logger observes finished tasks for one replication rule.
type Logger struct {
	M        *model.Model
	Src, Dst cloud.RegionID

	// Alpha is the EWMA smoothing factor of the actual/predicted ratio.
	Alpha float64
	// Threshold is the relative deviation that, once persistent, triggers
	// a parameter refresh.
	Threshold float64
	// MinSamples is how many observations a deviation must persist for.
	MinSamples int

	mu      sync.Mutex
	state   map[cloud.RegionID]*ewma
	history []Observation

	observed  telemetry.Counter
	refreshes telemetry.Counter
}

type ewma struct {
	ratio  float64
	streak int // consecutive observations deviating beyond Threshold
}

// New returns a Logger with the default sensitivity.
func New(m *model.Model, src, dst cloud.RegionID) *Logger {
	return &Logger{
		M: m, Src: src, Dst: dst,
		Alpha:      0.3,
		Threshold:  0.25,
		MinSamples: 8,
		state:      make(map[cloud.RegionID]*ewma),
	}
}

// Stats returns a snapshot of the logger's counters.
func (lg *Logger) Stats() Stats {
	return Stats{Observed: lg.observed.Value(), Refreshes: lg.refreshes.Value()}
}

// History returns the recorded observations.
func (lg *Logger) History() []Observation {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return append([]Observation(nil), lg.history...)
}

// Observe ingests one finished task. Hook it to engine.OnTaskDone.
func (lg *Logger) Observe(res engine.TaskResult) {
	if !res.OK || res.Changelog || res.Plan.EstMean <= 0 {
		return
	}
	actual := res.ExecSeconds()
	if actual <= 0 {
		return
	}
	ratio := actual / res.Plan.EstMean

	lg.observed.Inc()
	lg.mu.Lock()
	lg.history = append(lg.history, Observation{
		Loc: res.Plan.Loc, N: res.Plan.N, Size: res.Size,
		Predicted: res.Plan.EstMean, Actual: actual,
	})
	st, ok := lg.state[res.Plan.Loc]
	if !ok {
		st = &ewma{ratio: 1}
		lg.state[res.Plan.Loc] = st
	}
	st.ratio = lg.Alpha*ratio + (1-lg.Alpha)*st.ratio
	// A refresh needs the deviation to be *persistent*: MinSamples
	// consecutive tasks beyond the threshold. Isolated spikes reset the
	// streak and are absorbed by the EWMA.
	if math.Abs(ratio-1) > lg.Threshold {
		st.streak++
	} else {
		st.streak = 0
	}
	deviated := st.streak >= lg.MinSamples && math.Abs(st.ratio-1) > lg.Threshold
	var correction float64
	if deviated {
		correction = st.ratio
		st.ratio = 1
		st.streak = 0
		lg.refreshes.Inc()
	}
	lg.mu.Unlock()

	if deviated {
		lg.refresh(res.Plan.Loc, correction)
	}
}

// refresh scales the path's transfer parameters by the observed ratio —
// the "periodically updates the parameters" loop of §4 — and invalidates
// the cached Monte-Carlo distributions so they are regenerated on demand.
func (lg *Logger) refresh(loc cloud.RegionID, ratio float64) {
	key := model.PathKey{Src: lg.Src, Dst: lg.Dst, Loc: loc}
	pp, ok := lg.M.Path(key)
	if !ok {
		return
	}
	pp.C = pp.C.Scale(ratio)
	pp.Cp = pp.Cp.Scale(ratio)
	pp.S = pp.S.Scale(ratio)
	lg.M.SetPath(key, pp) // also drops this path's MC cache
	lg.M.InvalidatePath(lg.Src, lg.Dst)
}
