package areplica

// Fleet control plane facade: many replication rules deployed as one unit
// under a shared scheduler and per-(provider,region) quota ledgers, with
// topology helpers for one-to-many fan-out, chained replication (A→B→C)
// and full mesh. See internal/fleet for the scheduling and quota
// machinery; DESIGN.md "Fleet control plane" for semantics.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/fleetobs"
)

// FleetRule is one rule of a fleet topology.
type FleetRule struct {
	SrcRegion, SrcBucket string
	DstRegion, DstBucket string

	// KeyPrefix scopes the rule to keys with this prefix (empty = all).
	KeyPrefix string
	// SLO is the rule's replication-delay objective (zero = fastest plan).
	SLO time.Duration
	// Weight is the rule's fair-share weight in the fleet scheduler
	// (default 1; a weight-2 rule is admitted twice as often under
	// contention).
	Weight float64
	// Priority is the rule's scheduling class: higher classes admit
	// strictly first (default 0).
	Priority int
	// AcceptOrigins lists upstream replica-write origin tags (OriginOf)
	// this rule treats as source writes — how a chain's B→C hop consumes
	// B's applied writes without a notification loop.
	AcceptOrigins []string
}

// ID returns the rule's stable identifier ("src/bucket->dst/bucket").
func (r FleetRule) ID() string {
	return fmt.Sprintf("%s/%s->%s/%s", r.SrcRegion, r.SrcBucket, r.DstRegion, r.DstBucket)
}

// OriginOf returns the origin tag the given rule's engine stamps on its
// destination writes. Chained topologies whitelist upstream rules'
// origins via FleetRule.AcceptOrigins; the builders below do it for you.
func OriginOf(srcRegion, srcBucket, dstRegion, dstBucket string) string {
	return engine.OriginPrefix + fmt.Sprintf("%s/%s->%s/%s", srcRegion, srcBucket, dstRegion, dstBucket)
}

// FleetDst is one destination of a fan-out topology.
type FleetDst struct {
	Region string
	Bucket string
}

// FanOut builds a one-to-many topology: every write to the source bucket
// replicates to each destination independently (one rule per destination,
// all fed by the same source changelog).
func FanOut(srcRegion, srcBucket string, dsts ...FleetDst) ([]FleetRule, error) {
	if len(dsts) == 0 {
		return nil, fmt.Errorf("areplica: fan-out needs at least one destination")
	}
	rules := make([]FleetRule, 0, len(dsts))
	for _, d := range dsts {
		if d.Region == srcRegion && d.Bucket == srcBucket {
			return nil, fmt.Errorf("areplica: fan-out destination %s/%s is the source", d.Region, d.Bucket)
		}
		rules = append(rules, FleetRule{
			SrcRegion: srcRegion, SrcBucket: srcBucket,
			DstRegion: d.Region, DstBucket: d.Bucket,
		})
	}
	return rules, nil
}

// FleetHop is one stop of a chained topology.
type FleetHop struct {
	Region string
	Bucket string
}

// Chain builds a chained topology A→B→C…: each hop's applied writes feed
// the next hop's rule (the next rule whitelists the previous rule's
// origin), so an object written at the head propagates hop by hop without
// any hop re-notifying its own upstream. A hop may not repeat — a cycle
// would re-deliver writes forever at the rule level; use FullMesh for
// cyclic (active-active) topologies, whose origin-skip semantics are
// loop-free by construction.
func Chain(hops ...FleetHop) ([]FleetRule, error) {
	if len(hops) < 2 {
		return nil, fmt.Errorf("areplica: a chain needs at least two hops")
	}
	seen := make(map[string]bool, len(hops))
	for _, h := range hops {
		id := h.Region + "/" + h.Bucket
		if seen[id] {
			return nil, fmt.Errorf("areplica: chain revisits %s (cycles are not chains; use FullMesh)", id)
		}
		seen[id] = true
	}
	rules := make([]FleetRule, 0, len(hops)-1)
	for i := 1; i < len(hops); i++ {
		prev, cur := hops[i-1], hops[i]
		r := FleetRule{
			SrcRegion: prev.Region, SrcBucket: prev.Bucket,
			DstRegion: cur.Region, DstBucket: cur.Bucket,
		}
		if i > 1 {
			up := hops[i-2]
			r.AcceptOrigins = []string{OriginOf(up.Region, up.Bucket, prev.Region, prev.Bucket)}
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// FullMesh builds an active-active mesh over the named bucket in every
// region: one rule per ordered region pair. Writes at any member
// replicate to all others in one hop; replica writes are origin-tagged
// and skipped by every member's rules, so the mesh cannot loop.
func FullMesh(bucket string, regions ...string) ([]FleetRule, error) {
	if len(regions) < 2 {
		return nil, fmt.Errorf("areplica: a mesh needs at least two regions")
	}
	seen := make(map[string]bool, len(regions))
	for _, r := range regions {
		if seen[r] {
			return nil, fmt.Errorf("areplica: mesh region %s repeated", r)
		}
		seen[r] = true
	}
	var rules []FleetRule
	for _, src := range regions {
		for _, dst := range regions {
			if src == dst {
				continue
			}
			rules = append(rules, FleetRule{
				SrcRegion: src, SrcBucket: bucket,
				DstRegion: dst, DstBucket: bucket,
			})
		}
	}
	return rules, nil
}

// FleetOptions configures a fleet deployment's shared control plane.
type FleetOptions struct {
	// FaaSConcurrency caps concurrently running function instances per
	// (provider,region) lane across the whole fleet (0 = uncapped).
	// Quotas arm after deployment, like chaos, so profiling stays clean.
	FaaSConcurrency int
	// KVOpsPerSec caps each lane's shared KV throughput (0 = uncapped).
	KVOpsPerSec float64
	// StallGuard is the ledger's forced-admission escape window (see
	// fleet.QuotaConfig; default 2 virtual minutes).
	StallGuard time.Duration

	// LaneSlots bounds concurrent scheduled dispatches per source lane
	// (default 16, clamped to FaaSConcurrency when that is lower).
	LaneSlots int
	// BatchWindow is the scheduler's cross-rule coalescing window
	// (default 20ms).
	BatchWindow time.Duration
	// StarveAfter is the queue wait past which an event counts its rule
	// as starved (default 30s).
	StarveAfter time.Duration

	// LagTarget is every rule's monitored lag objective (default 30s).
	LagTarget time.Duration
	// ProfileRounds overrides profiling effort for all rules.
	ProfileRounds int
}

// Fleet is a deployed fleet: its rules, shared scheduler and quota
// ledger.
type Fleet struct {
	sim    *Sim
	sched  *fleet.Scheduler
	ledger *fleet.Ledger
	order  []string // rule IDs in deployment order
	reps   map[string]*Replication
}

// DeployFleet deploys every rule of a topology under one shared
// scheduler and quota ledger. Buckets are created as needed (existing
// buckets are reused); rules deploy in order, sharing the sim's
// performance model, each with an SLO monitor attached. Quotas arm after
// all rules are deployed — profiling, like chaos, sees a clean account.
func (s *Sim) DeployFleet(rules []FleetRule, opts FleetOptions) (*Fleet, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("areplica: a fleet needs at least one rule")
	}
	laneSlots := opts.LaneSlots
	if laneSlots <= 0 {
		laneSlots = 16
	}
	if opts.FaaSConcurrency > 0 && laneSlots > opts.FaaSConcurrency {
		laneSlots = opts.FaaSConcurrency
	}
	var ledger *fleet.Ledger
	if opts.FaaSConcurrency > 0 || opts.KVOpsPerSec > 0 {
		ledger = fleet.NewLedger(s.world.Clock, s.world.Metrics, fleet.QuotaConfig{
			FaaSConcurrency: opts.FaaSConcurrency,
			KVOpsPerSec:     opts.KVOpsPerSec,
			StallGuard:      opts.StallGuard,
		})
	}
	sched := fleet.NewScheduler(s.world.Clock, s.world.Metrics, ledger, fleet.SchedConfig{
		LaneSlots:   laneSlots,
		BatchWindow: opts.BatchWindow,
		StarveAfter: opts.StarveAfter,
	})

	f := &Fleet{sim: s, sched: sched, ledger: ledger, reps: make(map[string]*Replication)}
	for _, fr := range rules {
		src, err := s.region(fr.SrcRegion)
		if err != nil {
			return nil, fmt.Errorf("areplica: fleet rule %s: %w", fr.ID(), err)
		}
		dst, err := s.region(fr.DstRegion)
		if err != nil {
			return nil, fmt.Errorf("areplica: fleet rule %s: %w", fr.ID(), err)
		}
		rid := fr.ID()
		lane := fleet.LaneID{Provider: string(cloud.MustLookup(src).Provider), Region: string(src)}
		// Rule admission: a duplicate rule is a topology error, caught
		// before anything deploys or subscribes.
		if err := sched.Register(rid, fr.DstRegion, lane, fr.Weight, fr.Priority); err != nil {
			return nil, fmt.Errorf("areplica: %w", err)
		}
		if err := s.ensureBucket(fr.SrcRegion, fr.SrcBucket); err != nil {
			return nil, err
		}
		if err := s.ensureBucket(fr.DstRegion, fr.DstBucket); err != nil {
			return nil, err
		}
		svc, err := core.Deploy(s.world, core.Options{
			Rule: engine.Rule{
				Src: src, Dst: dst,
				SrcBucket: fr.SrcBucket, DstBucket: fr.DstBucket,
				SLO: fr.SLO, KeyPrefix: fr.KeyPrefix,
				AcceptOrigins: fr.AcceptOrigins,
			},
			EnableMonitor: true,
			MonitorSLO:    fleetobs.SLO{LagTarget: opts.LagTarget},
			Events:        s.events,
			ProfileRounds: opts.ProfileRounds,
			Model:         s.model, // rules share profiling work
			DispatchGate:  sched.Gate(rid),
		})
		if err != nil {
			return nil, fmt.Errorf("areplica: fleet rule %s: %w", rid, err)
		}
		f.order = append(f.order, rid)
		f.reps[rid] = &Replication{sim: s, svc: svc}
	}

	// Arm the shared quotas on every region's platforms now that
	// profiling is done; execution may land anywhere (relays, remote
	// replicators), so every lane is gated.
	if ledger != nil {
		for _, r := range cloud.AllRegions() {
			lane := fleet.LaneID{Provider: string(r.Provider), Region: string(r.ID())}
			reg := s.world.Region(r.ID())
			if opts.FaaSConcurrency > 0 {
				reg.Fn.SetQuota(ledger.FnGate(lane))
			}
			if opts.KVOpsPerSec > 0 {
				reg.KV.SetQuota(ledger.KVGate(lane))
			}
		}
	}
	return f, nil
}

// ensureBucket creates a bucket, tolerating its prior existence (fleet
// topologies legitimately reuse buckets: fan-out sources, mesh members).
func (s *Sim) ensureBucket(region, bucket string) error {
	err := s.CreateBucket(region, bucket)
	if err != nil && strings.Contains(err.Error(), "already exists") {
		return nil
	}
	return err
}

// Size returns the number of deployed rules.
func (f *Fleet) Size() int { return len(f.order) }

// RuleIDs returns the deployed rule identifiers, sorted.
func (f *Fleet) RuleIDs() []string {
	out := append([]string(nil), f.order...)
	sort.Strings(out)
	return out
}

// Rule returns one deployed rule's Replication (nil when unknown).
func (f *Fleet) Rule(id string) *Replication { return f.reps[id] }

// Replications returns the deployed rules in deployment order.
func (f *Fleet) Replications() []*Replication {
	out := make([]*Replication, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, f.reps[id])
	}
	return out
}

// PollMonitors re-evaluates every rule's SLOs at the current virtual
// instant (see Replication.PollMonitor).
func (f *Fleet) PollMonitors() {
	for _, id := range f.order {
		f.reps[id].PollMonitor()
	}
}

// PendingTotal sums source writes not yet replicated across all rules.
func (f *Fleet) PendingTotal() int {
	n := 0
	for _, id := range f.order {
		n += f.reps[id].Pending()
	}
	return n
}

// DLQTotal sums dead-lettered events across all rules.
func (f *Fleet) DLQTotal() int {
	n := 0
	for _, id := range f.order {
		n += f.reps[id].DLQSize()
	}
	return n
}

// RedriveAll re-dispatches every rule's dead-lettered events, returning
// how many re-entered the pipeline. Run the simulation (Wait) afterwards.
func (f *Fleet) RedriveAll() int {
	n := 0
	for _, id := range f.order {
		n += f.reps[id].RedriveDLQ()
	}
	return n
}

// WriteHealthTable renders every rule's health row as an aligned text
// table in deterministic sorted rule order.
func (f *Fleet) WriteHealthTable(w io.Writer) error {
	return f.sim.WriteHealthTable(w, f.Replications()...)
}

// Diverged audits forward convergence: for every rule, each source key
// under the rule's prefix must exist at the destination with the same
// ETag. It returns the number of diverged (missing or stale) keys and
// the number of keys audited.
func (f *Fleet) Diverged() (diverged, total int, err error) {
	for _, id := range f.order {
		rep := f.reps[id]
		rule := rep.svc.Rule
		src := f.sim.world.Region(rule.Src).Obj
		dst := f.sim.world.Region(rule.Dst).Obj
		metas, lerr := src.List(rule.SrcBucket)
		if lerr != nil {
			return 0, 0, fmt.Errorf("areplica: fleet audit %s: %w", id, lerr)
		}
		for _, m := range metas {
			if rule.KeyPrefix != "" && !strings.HasPrefix(m.Key, rule.KeyPrefix) {
				continue
			}
			total++
			cur, herr := dst.Head(rule.DstBucket, m.Key)
			if herr != nil || cur.ETag != m.ETag {
				diverged++
			}
		}
	}
	return diverged, total, nil
}

// FleetRuleStats is one rule's scheduling account.
type FleetRuleStats struct {
	Rule       string
	Admits     int64
	Defers     int64
	Starved    int64
	QuotaWaits int64
	Queued     int
	MaxQueue   int
}

// SchedStats snapshots every rule's scheduling counters, sorted by rule.
func (f *Fleet) SchedStats() []FleetRuleStats {
	var out []FleetRuleStats
	for _, st := range f.sched.RuleStats() {
		out = append(out, FleetRuleStats{
			Rule: st.Rule, Admits: st.Admits, Defers: st.Defers,
			Starved: st.Starved, QuotaWaits: st.QuotaWaits,
			Queued: st.Queued, MaxQueue: st.MaxQueue,
		})
	}
	return out
}

// FleetLaneStats is one (provider,region) lane's quota account.
type FleetLaneStats struct {
	Provider       string
	Region         string
	Cap            int
	MaxInflight    int
	Forced         int64
	UtilizationPct float64
}

// QuotaStats snapshots every quota lane the fleet has touched, sorted by
// lane; empty when no quotas were configured.
func (f *Fleet) QuotaStats() []FleetLaneStats {
	var out []FleetLaneStats
	for _, st := range f.ledger.Stats() {
		out = append(out, FleetLaneStats{
			Provider: st.Lane.Provider, Region: st.Lane.Region,
			Cap: st.Cap, MaxInflight: st.MaxInflight, Forced: st.Forced,
			UtilizationPct: st.UtilizationPct,
		})
	}
	return out
}

// FleetBatchStats aggregates cross-rule batching over all lanes.
type FleetBatchStats struct {
	Batches  int64
	Admitted int64
	MeanSize float64
}

// BatchStats totals the scheduler's cross-rule batching.
func (f *Fleet) BatchStats() FleetBatchStats {
	st := f.sched.BatchStats()
	return FleetBatchStats{Batches: st.Batches, Admitted: st.Admitted, MeanSize: st.MeanSize}
}

// fleetTopologySpec is the JSON topology schema of LoadFleetTopology (and
// cmd/areplica -fleet). Durations carry unit-suffixed field names.
type fleetTopologySpec struct {
	Quota struct {
		FaaSConcurrency int     `json:"faas_concurrency"`
		KVOpsPerSec     float64 `json:"kv_ops_per_sec"`
	} `json:"quota"`
	Sched struct {
		LaneSlots     int     `json:"lane_slots"`
		BatchWindowMS float64 `json:"batch_window_ms"`
		StarveAfterS  float64 `json:"starve_after_s"`
		LagTargetS    float64 `json:"lag_target_s"`
	} `json:"sched"`
	Rules  []fleetRuleSpec   `json:"rules,omitempty"`
	FanOut []fleetFanOutSpec `json:"fanout,omitempty"`
	Chains []fleetChainSpec  `json:"chains,omitempty"`
	Mesh   []fleetMeshSpec   `json:"mesh,omitempty"`
}

type fleetRuleSpec struct {
	Src       string  `json:"src"`
	SrcBucket string  `json:"src_bucket"`
	Dst       string  `json:"dst"`
	DstBucket string  `json:"dst_bucket"`
	KeyPrefix string  `json:"key_prefix,omitempty"`
	SLOS      float64 `json:"slo_s,omitempty"`
	Weight    float64 `json:"weight,omitempty"`
	Priority  int     `json:"priority,omitempty"`
}

type fleetFanOutSpec struct {
	Src      string         `json:"src"`
	Bucket   string         `json:"bucket"`
	Dsts     []fleetDstSpec `json:"dsts"`
	Weight   float64        `json:"weight,omitempty"`
	Priority int            `json:"priority,omitempty"`
}

type fleetDstSpec struct {
	Region string `json:"region"`
	Bucket string `json:"bucket"`
}

type fleetChainSpec struct {
	Hops     []fleetDstSpec `json:"hops"`
	Weight   float64        `json:"weight,omitempty"`
	Priority int            `json:"priority,omitempty"`
}

type fleetMeshSpec struct {
	Bucket   string   `json:"bucket"`
	Regions  []string `json:"regions"`
	Weight   float64  `json:"weight,omitempty"`
	Priority int      `json:"priority,omitempty"`
}

// LoadFleetTopology parses a JSON topology (direct rules plus fanout,
// chain and mesh groups) into deployable rules and options. Unknown
// fields are errors, so typos in a topology file surface instead of
// silently deploying something else.
func LoadFleetTopology(r io.Reader) ([]FleetRule, FleetOptions, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec fleetTopologySpec
	if err := dec.Decode(&spec); err != nil {
		return nil, FleetOptions{}, fmt.Errorf("areplica: fleet topology: %w", err)
	}
	opts := FleetOptions{
		FaaSConcurrency: spec.Quota.FaaSConcurrency,
		KVOpsPerSec:     spec.Quota.KVOpsPerSec,
		LaneSlots:       spec.Sched.LaneSlots,
		BatchWindow:     time.Duration(spec.Sched.BatchWindowMS * float64(time.Millisecond)),
		StarveAfter:     time.Duration(spec.Sched.StarveAfterS * float64(time.Second)),
		LagTarget:       time.Duration(spec.Sched.LagTargetS * float64(time.Second)),
	}
	var rules []FleetRule
	shape := func(group []FleetRule, weight float64, priority int) {
		for i := range group {
			group[i].Weight = weight
			group[i].Priority = priority
		}
		rules = append(rules, group...)
	}
	for _, rs := range spec.Rules {
		rules = append(rules, FleetRule{
			SrcRegion: rs.Src, SrcBucket: rs.SrcBucket,
			DstRegion: rs.Dst, DstBucket: rs.DstBucket,
			KeyPrefix: rs.KeyPrefix,
			SLO:       time.Duration(rs.SLOS * float64(time.Second)),
			Weight:    rs.Weight, Priority: rs.Priority,
		})
	}
	for _, fs := range spec.FanOut {
		dsts := make([]FleetDst, len(fs.Dsts))
		for i, d := range fs.Dsts {
			dsts[i] = FleetDst{Region: d.Region, Bucket: d.Bucket}
		}
		group, err := FanOut(fs.Src, fs.Bucket, dsts...)
		if err != nil {
			return nil, FleetOptions{}, err
		}
		shape(group, fs.Weight, fs.Priority)
	}
	for _, cs := range spec.Chains {
		hops := make([]FleetHop, len(cs.Hops))
		for i, h := range cs.Hops {
			hops[i] = FleetHop{Region: h.Region, Bucket: h.Bucket}
		}
		group, err := Chain(hops...)
		if err != nil {
			return nil, FleetOptions{}, err
		}
		shape(group, cs.Weight, cs.Priority)
	}
	for _, ms := range spec.Mesh {
		group, err := FullMesh(ms.Bucket, ms.Regions...)
		if err != nil {
			return nil, FleetOptions{}, err
		}
		shape(group, ms.Weight, ms.Priority)
	}
	if len(rules) == 0 {
		return nil, FleetOptions{}, fmt.Errorf("areplica: fleet topology declares no rules")
	}
	return rules, opts, nil
}
