// Command areplica is a CLI for the simulated AReplica deployment: it
// stands up the three-cloud world, deploys a replication rule, drives a
// workload against the source bucket, and reports per-object replication
// delays and itemized cost — the simulation equivalent of the paper's
// public CLI.
//
// Examples:
//
//	areplica -src aws:us-east-1 -dst azure:eastus -size 128MB -count 5
//	areplica -src gcp:us-east1 -dst aws:eu-west-1 -slo 30s -replay 10m -rate 60
//	areplica -size 64MB -count 3 -trace trace.json -metrics metrics.txt
//	areplica -chaos mixed@7 -count 20 -metrics metrics.txt
//	areplica -chaos notify-flaky@3 -scrub 30s -count 12
//	areplica -crashpoint after-checkpoint -size 64MB -count 1 -v
//	areplica -fleet topology.json -replay 5m -status
//	areplica -chaos list
//	areplica -regions
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		srcFlag         = flag.String("src", "aws:us-east-1", "source region (<provider>:<region>)")
		dstFlag         = flag.String("dst", "azure:eastus", "destination region")
		sizeFlag        = flag.String("size", "16MB", "object size for -count mode (e.g. 512KB, 16MB, 1GB)")
		count           = flag.Int("count", 3, "number of objects to replicate")
		sloFlag         = flag.Duration("slo", 0, "replication SLO (0 = fastest plan)")
		pct             = flag.Float64("percentile", 0.99, "SLO percentile")
		batching        = flag.Bool("batching", false, "enable SLO-bounded batching (requires -slo)")
		replayDur       = flag.Duration("replay", 0, "replay a synthetic IBM-COS-like trace of this duration instead of -count mode")
		traceRate       = flag.Float64("rate", 60, "trace request rate (ops/minute)")
		traceOut        = flag.String("trace", "", "write per-task spans as Chrome trace_event JSON to this file (chrome://tracing, Perfetto)")
		metricsOut      = flag.String("metrics", "", "write the run's aggregate metrics (counters + latency histograms) to this file")
		chaosFlag       = flag.String("chaos", "", "arm a chaos profile after deployment (name[@seed], e.g. mixed@7; 'list' shows profiles)")
		crashPointFlag  = flag.String("crashpoint", "", "crash a function instance once at this data-plane step (e.g. after-checkpoint, after-part-2, before-complete-mpu)")
		scrubFlag       = flag.Duration("scrub", 0, "run anti-entropy scrubbing at this cadence (e.g. 30s; 0 = off)")
		statusFlag      = flag.Bool("status", false, "print the rule's health table (lag watermarks, burn rates, alerts) at the end")
		eventsOut       = flag.String("events", "", "write the structured SLO alert log as JSONL to this file")
		promOut         = flag.String("prom", "", "write the run's metrics in Prometheus text format to this file")
		lagSLO          = flag.Duration("lag-slo", 0, "monitored replication-lag objective per event (0 = 30s default)")
		noDoubleBuf     = flag.Bool("no-doublebuffer", false, "disable the pipelined data plane (serialize each part's download and upload)")
		claimBatch      = flag.Int("claim-batch", 0, "parts claimed per part-pool KV operation (0 = default 4, 1 = per-part)")
		hedgeBudget     = flag.Int("hedge", 0, "speculative tail-part duplications per task (0 = default 4, -1 = disable)")
		noAdaptiveParts = flag.Bool("no-adaptive-parts", false, "pin the distributed part size to 8MB instead of adapting per object")
		critpath        = flag.Bool("critpath", false, "print the critical-path delay attribution across replicated tasks")
		retainFlag      = flag.String("retain", "all", "trace retention policy: all (keep every trace), auto (anomalies + 1-in-16 head sample), or 1/N (anomalies + 1-in-N)")
		retainSeed      = flag.Uint64("retain-seed", 0, "seed phasing the head-sample counter of -retain auto|1/N")
		fleetFlag       = flag.String("fleet", "", "deploy a multi-rule fleet from this JSON topology file (rules, fanout, chains, mesh, quotas) instead of a single rule")
		regions         = flag.Bool("regions", false, "list available regions and exit")
		showStats       = flag.Bool("stats", false, "print a per-region activity snapshot at the end")
		verbose         = flag.Bool("v", false, "print per-object delays")
	)
	flag.Parse()

	sim := areplica.NewSim()
	if *regions {
		for _, r := range sim.Regions() {
			fmt.Println(r)
		}
		return
	}
	if *chaosFlag == "list" {
		for _, n := range chaos.Names() {
			fmt.Println(n)
		}
		return
	}
	if *fleetFlag != "" {
		// A fleet topology file owns rule placement, quotas and scheduling;
		// the single-rule workload and diagnostics flags would silently
		// apply to none of its rules, so passing any of them alongside
		// -fleet is an error, not a hint.
		singleRuleOnly := map[string]string{
			"src": "", "dst": "", "size": "", "count": "", "slo": "", "percentile": "",
			"batching": "", "chaos": "", "crashpoint": "", "scrub": "", "lag-slo": "",
			"no-doublebuffer": "", "claim-batch": "", "hedge": "", "no-adaptive-parts": "",
			"critpath": "", "trace": "", "retain": "", "retain-seed": "",
		}
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			if _, ok := singleRuleOnly[f.Name]; ok {
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			fatal(fmt.Errorf("-fleet is incompatible with %s (single-rule workload and diagnostics flags); configure rules, quotas and scheduling in %s instead",
				strings.Join(conflicting, ", "), *fleetFlag))
		}
		runFleet(sim, *fleetFlag, *replayDur, *traceRate, fleetOutput{
			status: *statusFlag, verbose: *verbose, stats: *showStats,
			metricsOut: *metricsOut, promOut: *promOut, eventsOut: *eventsOut,
		})
		return
	}

	var chaosProf chaos.Profile
	if *chaosFlag != "" {
		var err error
		if chaosProf, err = chaos.Parse(*chaosFlag); err != nil {
			fatal(err)
		}
	}
	if *crashPointFlag != "" {
		// Compose with -chaos when both are given; alone it is a pure
		// crash-point profile (the injector fires exactly once).
		if chaosProf.Name == "" {
			chaosProf.Name = "crash-point"
		}
		chaosProf.CrashPoint = *crashPointFlag
	}
	size, err := parseSize(*sizeFlag)
	if err != nil {
		fatal(err)
	}

	const srcBucket, dstBucket = "data", "data-replica"
	if err := sim.CreateBucket(*srcFlag, srcBucket); err != nil {
		fatal(err)
	}
	if err := sim.CreateBucket(*dstFlag, dstBucket); err != nil {
		fatal(err)
	}

	fmt.Printf("profiling %s -> %s ...\n", *srcFlag, *dstFlag)
	rep, err := sim.Deploy(areplica.Rule{
		SrcRegion: *srcFlag, SrcBucket: srcBucket,
		DstRegion: *dstFlag, DstBucket: dstBucket,
		SLO: *sloFlag, Percentile: *pct, Batching: *batching,
		Scrub: *scrubFlag > 0, ScrubCadence: *scrubFlag,
		Monitor: true, LagTarget: *lagSLO,
		DisableDoubleBuffer: *noDoubleBuf, ClaimBatch: *claimBatch,
		HedgeBudget: *hedgeBudget, DisableAdaptiveParts: *noAdaptiveParts,
	})
	if err != nil {
		fatal(err)
	}
	profilingCost := sim.CostTotal()
	profiledItems := sim.CostBreakdown()

	// Tracing starts after Deploy so exports cover the workload's
	// replication tasks, not the one-time profiling phase (-critpath
	// needs the spans too).
	retention, err := parseRetain(*retainFlag, *retainSeed)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" || *critpath {
		sim.World().Tracer.SetPolicy(retention)
		sim.World().Tracer.Enable()
	}
	// Chaos arms after Deploy too: profiling fits a clean model, and
	// partition windows are anchored at the workload's start.
	if chaosProf.Enabled() {
		label := *chaosFlag
		if label == "" {
			label = chaosProf.Name
		}
		if chaosProf.CrashPoint != "" {
			label += " (crash at " + chaosProf.CrashPoint + ")"
		}
		fmt.Printf("arming chaos profile %s\n", label)
		sim.World().SetChaos(chaosProf)
	}
	if *scrubFlag > 0 {
		if err := rep.StartScrub(); err != nil {
			fatal(err)
		}
		fmt.Printf("scrubbing every %s\n", *scrubFlag)
	}

	// Under chaos the source PUT itself can be refused; retry with backoff
	// like any SDK client (a no-op without injection).
	put := func(key string, size int64) error {
		var err error
		for attempt := 0; attempt < 8; attempt++ {
			if attempt > 0 {
				sim.Sleep(250 * time.Millisecond << uint(attempt-1))
			}
			if _, err = sim.PutObject(*srcFlag, srcBucket, key, size); err == nil {
				return nil
			}
		}
		return err
	}

	if *replayDur > 0 {
		ops := trace.Generate(trace.DefaultConfig(*replayDur, *traceRate))
		fmt.Printf("replaying %d trace operations over %s (virtual time)...\n", len(ops), *replayDur)
		w := sim.World()
		trace.Replay(w.Clock, ops, func(op trace.Op) {
			if op.Type == trace.OpDelete {
				_ = sim.DeleteObject(*srcFlag, srcBucket, op.Key)
				return
			}
			if err := put(op.Key, op.Size); err != nil {
				fatal(err)
			}
			rep.PollMonitor()
		})
	} else {
		fmt.Printf("replicating %d x %s objects...\n", *count, *sizeFlag)
		for i := 0; i < *count; i++ {
			key := fmt.Sprintf("object-%03d", i)
			if err := put(key, size); err != nil {
				fatal(err)
			}
			if chaosProf.Enabled() {
				// Space writes out so scheduled partition windows land
				// mid-workload instead of after it.
				sim.Sleep(2 * time.Second)
			}
			// Burn rates re-evaluate between writes so fault windows where
			// nothing completes still alert.
			rep.PollMonitor()
		}
	}
	sim.Wait()
	rep.PollMonitor()

	if chaosProf.Enabled() && rep.DLQSize() > 0 {
		// Operator recovery: redrive the dead-letter queue once and let the
		// re-dispatched events converge.
		fmt.Printf("redriving %d dead-lettered events...\n", rep.RedriveDLQ())
		sim.Wait()
	}
	var scrubRep areplica.ScrubReport
	if *scrubFlag > 0 {
		// Final anti-entropy pass: prove convergence with a clean Merkle
		// exchange, repairing whatever the notifications missed.
		if scrubRep, err = rep.ScrubUntilClean(); err != nil {
			fatal(err)
		}
		sim.Wait()
	}

	records := rep.Records()
	if len(records) == 0 {
		fatal(fmt.Errorf("no replications completed"))
	}
	delays := make([]float64, len(records))
	for i, r := range records {
		delays[i] = r.Delay.Seconds()
		if *verbose {
			fmt.Printf("  %-24s %10s  %8.2fs\n", r.Key, byteSize(r.Size), r.Delay.Seconds())
		}
	}

	fmt.Printf("\nreplicated %d objects (pending %d)\n", len(records), rep.Pending())
	fmt.Printf("delay: p50 %.2fs  p99 %.2fs  max %.2fs\n",
		stats.Percentile(delays, 50), stats.Percentile(delays, 99), stats.Percentile(delays, 100))
	if *sloFlag > 0 {
		within := 0
		for _, d := range delays {
			if d <= sloFlag.Seconds() {
				within++
			}
		}
		fmt.Printf("SLO %s attainment: %.2f%%\n", *sloFlag, 100*float64(within)/float64(len(delays)))
	}
	fmt.Printf("\ncost (excluding one-time profiling of $%.4f):\n", profilingCost)
	bd := sim.CostBreakdown()
	var items []string
	for k := range bd {
		if bd[k]-profiledItems[k] > 0 {
			items = append(items, k)
		}
	}
	sort.Strings(items)
	var total float64
	for _, k := range items {
		v := bd[k] - profiledItems[k]
		fmt.Printf("  %-12s $%.6f\n", k, v)
		total += v
	}
	fmt.Printf("  %-12s $%.6f\n", "total", total)

	if chaosProf.Enabled() {
		m := sim.World().Metrics
		fmt.Printf("\nchaos %s: injected %d faults; engine retries %d, hedged parts %d, breaker opens %d, degraded plans %d, redrives %d, dlq %d\n",
			*chaosFlag,
			m.Counter("chaos.injected").Value(),
			m.Counter("engine.retries").Value(),
			m.Counter("engine.parts.hedged").Value(),
			m.Counter("engine.breaker_open").Value(),
			m.Counter("engine.breaker.degraded").Value(),
			m.Counter("engine.dlq.redriven").Value(),
			rep.DLQSize())
	}

	if *scrubFlag > 0 {
		m := sim.World().Metrics
		fmt.Printf("\nscrub cadence %s: %d rounds, %d divergent keys found, repairs %d dispatched / %d redriven, %d SLO violations, %d digest bytes (final round clean=%v)\n",
			*scrubFlag,
			m.Counter("antientropy.rounds").Value(),
			m.Counter("antientropy.divergent_keys").Value(),
			m.Counter("antientropy.repair.dispatched").Value(),
			m.Counter("antientropy.repair.redriven").Value(),
			m.Counter("antientropy.slo_violations").Value(),
			m.Counter("antientropy.digest.bytes").Value(),
			scrubRep.Clean)
	}

	if *critpath {
		fmt.Printf("\ncritical-path attribution (%d tasks):\n", len(records))
		agg := telemetry.Aggregate(sim.World().Tracer.CriticalPaths())
		if err := agg.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *statusFlag {
		fmt.Println()
		if err := sim.WriteHealthTable(os.Stdout, rep); err != nil {
			fatal(err)
		}
		if n := sim.EventCount(); n > 0 && *eventsOut == "" {
			fmt.Printf("%d SLO alert events (write them with -events)\n", n)
		}
	}

	if *showStats {
		fmt.Println()
		sim.World().Snapshot().Print(os.Stdout)
	}

	if *traceOut != "" || *critpath {
		fmt.Println("\ntrace retention:")
		if err := sim.World().Tracer.WriteRetentionSummary(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *traceOut != "" {
		if err := writeFile(*traceOut, sim.World().Tracer.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, sim.World().Metrics.WriteText); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
	if *promOut != "" {
		if err := writeFile(*promOut, sim.WriteMetricsProm); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote prometheus metrics to %s\n", *promOut)
	}
	if *eventsOut != "" {
		if err := writeFile(*eventsOut, sim.WriteEvents); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d alert events to %s\n", sim.EventCount(), *eventsOut)
	}
}

// fleetOutput bundles the output flags the fleet mode honors.
type fleetOutput struct {
	status, verbose, stats         bool
	metricsOut, promOut, eventsOut string
}

// runFleet deploys a topology file's rules under the shared control
// plane, replays a synthetic trace across every source bucket, and
// reports convergence, per-rule fairness and shared-quota utilization.
func runFleet(sim *areplica.Sim, path string, replayDur time.Duration, ratePerMin float64, out fleetOutput) {
	tf, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	rules, opts, err := areplica.LoadFleetTopology(tf)
	tf.Close()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("deploying fleet of %d rules from %s ...\n", len(rules), path)
	fl, err := sim.DeployFleet(rules, opts)
	if err != nil {
		fatal(err)
	}
	profilingCost := sim.CostTotal()

	// Entry points: every distinct source bucket, in deployment order.
	// Keys shard to one stable entry each and carry a per-entry prefix, so
	// every key has exactly one writing site even in active-active meshes.
	type entry struct{ region, bucket, prefix string }
	var entries []entry
	seen := make(map[string]bool)
	for i, r := range rules {
		id := r.SrcRegion + "/" + r.SrcBucket
		if seen[id] {
			continue
		}
		seen[id] = true
		entries = append(entries, entry{r.SrcRegion, r.SrcBucket, fmt.Sprintf("e%02d/", i)})
	}

	if replayDur <= 0 {
		replayDur = 2 * time.Minute
	}
	ops := trace.Generate(trace.DefaultConfig(replayDur, ratePerMin))
	for i := range ops {
		// The fleet scenario stresses the control plane, not bulk
		// transfer: clamp object sizes to the inline-plan regime.
		if ops[i].Size > 4<<20 {
			ops[i].Size = 4 << 20
		}
	}
	fmt.Printf("replaying %d trace operations over %s across %d entry buckets...\n",
		len(ops), replayDur, len(entries))
	trace.Replay(sim.World().Clock, ops, func(op trace.Op) {
		h := fnv.New32a()
		h.Write([]byte(op.Key))
		e := entries[int(h.Sum32()%uint32(len(entries)))]
		key := e.prefix + op.Key
		if op.Type == trace.OpDelete {
			_ = sim.DeleteObject(e.region, e.bucket, key)
			return
		}
		if _, err := sim.PutObject(e.region, e.bucket, key, op.Size); err != nil {
			fatal(err)
		}
	})
	sim.Wait()
	for i := 0; i < 3 && fl.DLQTotal() > 0; i++ {
		fmt.Printf("redriving %d dead-lettered events...\n", fl.RedriveAll())
		sim.Wait()
	}
	fl.PollMonitors()

	diverged, audited, err := fl.Diverged()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nfleet: %d rules, %d pending, %d dead-lettered; audit %d/%d keys converged\n",
		fl.Size(), fl.PendingTotal(), fl.DLQTotal(), audited-diverged, audited)

	var admits, defers, starved, quotaWaits int64
	for _, st := range fl.SchedStats() {
		admits += st.Admits
		defers += st.Defers
		starved += st.Starved
		quotaWaits += st.QuotaWaits
	}
	bs := fl.BatchStats()
	fmt.Printf("scheduler: %d admits, %d defers, %d starvation marks, %d quota waits; %d batches (mean %.1f)\n",
		admits, defers, starved, quotaWaits, bs.Batches, bs.MeanSize)
	if lanes := fl.QuotaStats(); len(lanes) > 0 {
		fmt.Printf("%-10s %-18s %5s %10s %7s %7s\n", "provider", "region", "cap", "max_infl", "forced", "util")
		for _, l := range lanes {
			fmt.Printf("%-10s %-18s %5d %10d %7d %6.1f%%\n",
				l.Provider, l.Region, l.Cap, l.MaxInflight, l.Forced, l.UtilizationPct)
		}
	}
	if out.verbose {
		fmt.Printf("\n%-56s %7s %7s %7s %7s %6s\n", "rule", "admits", "defers", "starve", "qwaits", "maxq")
		for _, st := range fl.SchedStats() {
			fmt.Printf("%-56s %7d %7d %7d %7d %6d\n",
				st.Rule, st.Admits, st.Defers, st.Starved, st.QuotaWaits, st.MaxQueue)
		}
	}
	fmt.Printf("cost (excluding one-time profiling of $%.4f): $%.4f\n",
		profilingCost, sim.CostTotal()-profilingCost)

	if out.status {
		fmt.Println()
		if err := fl.WriteHealthTable(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if out.stats {
		fmt.Println()
		sim.World().Snapshot().Print(os.Stdout)
	}
	if out.metricsOut != "" {
		if err := writeFile(out.metricsOut, sim.World().Metrics.WriteText); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", out.metricsOut)
	}
	if out.promOut != "" {
		if err := writeFile(out.promOut, sim.WriteMetricsProm); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote prometheus metrics to %s\n", out.promOut)
	}
	if out.eventsOut != "" {
		if err := writeFile(out.eventsOut, sim.WriteEvents); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d alert events to %s\n", sim.EventCount(), out.eventsOut)
	}
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseRetain maps the -retain flag onto a telemetry.RetentionPolicy:
// "all" keeps every trace (nil policy, the legacy default), "auto" keeps
// anomalies plus a 1-in-16 head sample, and "1/N" sets the head-sample
// rate explicitly.
func parseRetain(mode string, seed uint64) (*telemetry.RetentionPolicy, error) {
	switch mode {
	case "", "all":
		return nil, nil
	case "auto":
		return telemetry.NewSampledPolicy(seed, 16), nil
	}
	if rest, ok := strings.CutPrefix(mode, "1/"); ok {
		n, err := strconv.Atoi(rest)
		if err == nil && n >= 1 {
			return telemetry.NewSampledPolicy(seed, n), nil
		}
	}
	return nil, fmt.Errorf("invalid -retain %q (want all, auto, or 1/N)", mode)
}

// parseSize parses "512KB", "16MB", "1GB", or plain bytes.
func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	case strings.HasSuffix(u, "B"):
		u = strings.TrimSuffix(u, "B")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "areplica:", err)
	os.Exit(1)
}
