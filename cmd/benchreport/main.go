// Command benchreport runs the canonical regression suite — three
// representative replication scenarios plus a chaos fault-matrix slice —
// and writes a deterministic BENCH_<suite>.json report: per-experiment
// delay percentiles, dollar cost, the dominant critical-path delay
// category, and virtual-time series digests.
//
// Usage:
//
//	benchreport -quick                      # CI-sized suite -> BENCH_quick.json
//	benchreport -o out.json                 # full suite, explicit output
//	benchreport -quick -compare base.json   # exit 1 on regression vs base
//
// Two runs with identical flags produce byte-identical JSON (everything
// runs on the seeded virtual clock; the report carries no timestamps), so
// the file diffs cleanly and -compare needs no noise filtering.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleetobs"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "CI-sized workloads and a two-profile fault matrix")
		out        = flag.String("o", "", "output path (default BENCH_<suite>.json)")
		compare    = flag.String("compare", "", "baseline BENCH_*.json to diff against; regressions exit non-zero")
		tol        = flag.Float64("tol", 0.25, "relative regression tolerance for -compare (0.25 = 25% worse allowed)")
		interval   = flag.Duration("interval", 5*time.Second, "virtual-time series sampling interval")
		scrub      = flag.Bool("scrub", false, "include the anti-entropy cadence sweep in the report")
		fleet      = flag.Bool("fleet", false, "include the fleet-hundred-rules control-plane scenario in the report")
		fleetday   = flag.Bool("fleetday", false, "run ONLY the full-scale fleet-day replay (1000 rules, 24 virtual hours) and gate its absolute bars")
		events     = flag.String("events", "", "write the fault matrix's SLO alert log as JSONL to this file")
		simrate    = flag.Bool("simrate", true, "measure sim_rate (simulated-seconds per wall-second); disable for byte-identical determinism runs")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "benchreport: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	stopProfile := func() {}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		// Idempotent: explicitly invoked before the non-zero exits below
		// (os.Exit skips defers), deferred for the normal return.
		stopProfile = func() {
			pprof.StopCPUProfile()
			pf.Close()
		}
		defer stopProfile()
	}
	if *fleetday {
		code := runFleetDay(*quick, *simrate)
		stopProfile()
		os.Exit(code)
	}

	start := time.Now()
	var alertLog *fleetobs.EventLog
	if *events != "" {
		alertLog = fleetobs.NewEventLog()
	}
	rep, err := experiments.RunBench(experiments.BenchConfig{
		Quick: *quick, SampleInterval: *interval, Scrub: *scrub, Fleet: *fleet,
		Events:         alertLog,
		MeasureSimRate: *simrate,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	rep.Print(os.Stderr)
	fmt.Fprintf(os.Stderr, "(wall time %s)\n", time.Since(start).Round(time.Millisecond))

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Suite + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "benchreport: write %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: close %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)

	if alertLog != nil {
		ef, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		if err := alertLog.WriteJSONL(ef); err != nil {
			ef.Close()
			fmt.Fprintf(os.Stderr, "benchreport: write %s: %v\n", *events, err)
			os.Exit(1)
		}
		if err := ef.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: close %s: %v\n", *events, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d alert events to %s\n", alertLog.Len(), *events)
	}

	if *compare == "" {
		return
	}
	bf, err := os.Open(*compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	baseline, err := experiments.ReadBenchReport(bf)
	bf.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: parse %s: %v\n", *compare, err)
		os.Exit(1)
	}
	regs := experiments.CompareBench(baseline, rep, experiments.BenchTolerance{Relative: *tol})
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "no regressions vs %s (tol %.0f%%)\n", *compare, 100**tol)
		return
	}
	fmt.Fprintf(os.Stderr, "%d regression(s) vs %s:\n", len(regs), *compare)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	stopProfile()
	os.Exit(1)
}

// runFleetDay runs the fleet-day replay on its own — the CI step that
// profiles the full-scale scenario — and enforces its absolute bars:
// 100% convergence, zero duplicate final writes, an empty DLQ, and (when
// wall clock is measured) the 50k rule-sim-s/wall-s interactive-replay
// floor. Relative regressions (sim-rate collapse, allocation creep) are
// gated by -compare against the quick baseline instead, where both sides
// ran on the same class of machine.
func runFleetDay(quick, simrate bool) int {
	start := time.Now()
	res, err := experiments.RunFleetDay(experiments.FleetDayConfig{Quick: quick, MeasureRates: simrate})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: fleet-day: %v\n", err)
		return 1
	}
	res.Print(os.Stderr)
	fmt.Fprintf(os.Stderr, "(wall time %s)\n", time.Since(start).Round(time.Millisecond))
	code := 0
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "fleet-day gate: "+format+"\n", args...)
		code = 1
	}
	if res.ConvergencePct < 100 {
		fail("convergence %.2f%% (must be 100%%)", res.ConvergencePct)
	}
	if res.DupFinalWrites > 0 {
		fail("%d duplicate final writes (must be 0)", res.DupFinalWrites)
	}
	if res.DLQ > 0 || res.Pending > 0 {
		fail("%d DLQ / %d pending after drain (must be 0)", res.DLQ, res.Pending)
	}
	if !quick && res.RuleSimRate > 0 && res.RuleSimRate < 50_000 {
		fail("rule-sim rate %.0f below the 50000 interactive floor", res.RuleSimRate)
	}
	return code
}
