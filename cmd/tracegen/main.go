// Command tracegen generates a synthetic IBM-COS-like object storage
// trace (the distributional stand-in for the proprietary SNIA IOTTA
// download) and writes it as CSV, optionally printing the Figure 2/3
// summary statistics.
//
// Usage:
//
//	tracegen -duration 1h -rate 600 -o trace.csv
//	tracegen -duration 24h -rate 400 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/trace"
)

func main() {
	var (
		duration = flag.Duration("duration", time.Hour, "trace duration")
		rate     = flag.Float64("rate", 600, "base request rate (ops/minute)")
		keys     = flag.Int("keys", 5000, "working-set size")
		seed     = flag.String("seed", "ibm-cos", "generator seed")
		out      = flag.String("o", "", "output CSV path (default stdout)")
		showStat = flag.Bool("stats", false, "print summary statistics instead of CSV")
	)
	flag.Parse()

	cfg := trace.DefaultConfig(*duration, *rate)
	cfg.Keys = *keys
	cfg.Seed = *seed
	ops := trace.Generate(cfg)

	if *showStat {
		st := trace.Summarize(ops)
		fmt.Printf("operations: %d (%d PUT, %d DELETE)\n", st.Ops, st.Puts, st.Deletes)
		fmt.Printf("bytes written: %.2f GB\n", float64(st.Bytes)/(1<<30))
		fmt.Printf("PUTs <= 1MB: %.1f%%\n", 100*float64(st.PutsLE1MB)/float64(st.Puts))
		labels, counts, capacity := trace.SizeHistogram(ops)
		fmt.Printf("%-10s %12s %14s\n", "bucket", "count", "capacity(MB)")
		for i, l := range labels {
			fmt.Printf("%-10s %12d %14.1f\n", l, counts[i], float64(capacity[i])/(1<<20))
		}
		series := trace.ThroughputSeries(ops)
		lo, hi := series[0], series[0]
		for _, v := range series {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Printf("write throughput: %.1f-%.1f MB/s per minute\n", lo, hi)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, ops); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d operations to %s\n", len(ops), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
