// Command benchtab regenerates the tables and figures of the paper's
// evaluation on the simulated three-cloud world and prints the same rows
// and series the paper reports.
//
// Usage:
//
//	benchtab -all            # every table and figure (slow)
//	benchtab -all -quick     # reduced sizes/rounds, same shapes
//	benchtab -table 1        # one table (1, 2, 3 or 4)
//	benchtab -fig 23         # one figure (2-9, 12, 16-23)
//	benchtab -chaos matrix   # fault matrix across every chaos profile
//	benchtab -crash          # crash-point sweep: recovery audit per data-plane step
//	benchtab -chaos mixed@7  # fault matrix for one profile spec
//	benchtab -fleet          # fleet control plane: hundred-rule fairness table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/experiments"
	"repro/internal/fleetobs"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate one table (1-4)")
		fig       = flag.Int("fig", 0, "regenerate one figure (2-9, 12, 16-23)")
		extra     = flag.String("extra", "", "extension ablations: partsize | overlay | pipeline")
		chaosFlag = flag.String("chaos", "", "fault matrix: 'matrix' (all profiles) or comma-separated profile specs (e.g. mixed@7,storage-flaky)")
		crash     = flag.Bool("crash", false, "crash-point sweep: deterministic crash at each data-plane step, recovery audit per point")
		fleet     = flag.Bool("fleet", false, "fleet control plane: hundred-rule topology mix under shared quotas, per-rule fairness table")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		quick     = flag.Bool("quick", false, "reduced sizes and rounds")
		csv       = flag.String("csv", "", "also export plottable CSV datasets into this directory")
		tracedir  = flag.String("tracedir", "", "export per-experiment Chrome traces and metrics dumps into this directory")
	)
	flag.Parse()

	// Selectors are mutually exclusive: -all already covers every table,
	// figure and ablation, and the single-selection flags pick exactly one
	// experiment each. Reject conflicting combinations instead of silently
	// preferring one.
	var selected []string
	if *table != 0 {
		selected = append(selected, "-table")
	}
	if *fig != 0 {
		selected = append(selected, "-fig")
	}
	if *extra != "" {
		selected = append(selected, "-extra")
	}
	if *all {
		if len(selected) > 0 || *chaosFlag != "" || *crash || *fleet {
			conflicting := selected
			if *chaosFlag != "" {
				conflicting = append(conflicting, "-chaos")
			}
			if *crash {
				conflicting = append(conflicting, "-crash")
			}
			if *fleet {
				conflicting = append(conflicting, "-fleet")
			}
			fmt.Fprintf(os.Stderr, "benchtab: -all already runs everything; drop %s\n",
				strings.Join(conflicting, ", "))
			os.Exit(2)
		}
	} else if len(selected) > 1 {
		fmt.Fprintf(os.Stderr, "benchtab: %s select different experiments; pass exactly one\n",
			strings.Join(selected, ", "))
		os.Exit(2)
	}
	if !*all && len(selected) == 0 && *chaosFlag == "" && !*crash && !*fleet {
		flag.Usage()
		os.Exit(2)
	}

	// Fail on unusable output directories before running experiments for
	// minutes, not after.
	for _, dir := range []string{*csv, *tracedir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(2)
		}
	}
	csvDir = *csv
	experiments.TraceDir = *tracedir
	start := time.Now()
	if *chaosFlag != "" {
		runChaos(*chaosFlag, *quick)
	}
	if *crash {
		runCrash(*quick)
	}
	if *fleet {
		runFleet(*quick)
	}
	if *all {
		for _, t := range []int{1, 2, 3, 4} {
			runTable(t, *quick)
		}
		for _, f := range []int{2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 17, 18, 19, 20, 21, 22, 23} {
			runFig(f, *quick)
		}
		for _, e := range []string{"partsize", "overlay", "pipeline"} {
			runExtra(e, *quick)
		}
	} else if *table != 0 {
		runTable(*table, *quick)
	} else if *extra != "" {
		runExtra(*extra, *quick)
	} else if *fig != 0 {
		runFig(*fig, *quick)
	}
	if err := experiments.FlushTelemetry(); err != nil {
		fmt.Fprintf(os.Stderr, "telemetry export: %v\n", err)
		os.Exit(1)
	} else if *tracedir != "" {
		fmt.Fprintf(os.Stderr, "\nwrote traces and metrics to %s\n", *tracedir)
	}
	fmt.Fprintf(os.Stderr, "\n(wall time %s)\n", time.Since(start).Round(time.Millisecond))
}

var csvDir string

// emit prints a result and, with -csv, exports its datasets.
func emit[T interface{ Print(w io.Writer) }](res T) {
	res.Print(os.Stdout)
	if csvDir == "" {
		return
	}
	if exp, ok := any(res).(experiments.CSVExporter); ok {
		if err := experiments.ExportCSV(csvDir, exp); err != nil {
			fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
		}
	}
}

func runTable(n int, quick bool) {
	hdr(fmt.Sprintf("Table %d", n))
	switch n {
	case 1:
		emit(experiments.RunTable(experiments.TableConfig{Source: experiments.AWSEast, Quick: quick}))
	case 2:
		emit(experiments.RunTable(experiments.TableConfig{Source: experiments.AzureEast, Quick: quick}))
	case 3:
		emit(experiments.RunTable(experiments.TableConfig{Source: experiments.GCPEast, Quick: quick}))
	case 4:
		experiments.RunTable4(quick).Print(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %d\n", n)
		os.Exit(2)
	}
}

func runFig(n int, quick bool) {
	hdr(fmt.Sprintf("Figure %d", n))
	switch n {
	case 2:
		emit(experiments.RunFig2(quick))
	case 3:
		emit(experiments.RunFig3(quick))
	case 4:
		experiments.RunFig4().Print(os.Stdout)
	case 5:
		experiments.RunFig5(quick).Print(os.Stdout)
	case 6:
		experiments.RunFig6(quick).Print(os.Stdout)
	case 7:
		emit(experiments.RunFig7(quick))
	case 8:
		emit(experiments.RunFig8(quick))
	case 9:
		emit(experiments.RunFig9())
	case 12:
		experiments.RunFig12().Print(os.Stdout)
	case 16:
		emit(experiments.RunFig16(quick))
	case 17:
		emit(experiments.RunFig17(quick))
	case 18:
		emit(experiments.RunModelAccuracy("aws:us-east-1", "azure:eastus", quick))
	case 19:
		emit(experiments.RunModelAccuracy("azure:eastus", "gcp:asia-northeast1", quick))
	case 20:
		emit(experiments.RunFig20("azure:southeastasia", []cloud.RegionID{
			"gcp:europe-west6", "gcp:us-east1", "gcp:asia-northeast1",
		}, quick))
		emit(experiments.RunFig20("gcp:europe-west6", []cloud.RegionID{
			"azure:westus2", "azure:southeastasia", "azure:uksouth",
		}, quick))
	case 21:
		emit(experiments.RunFig21(quick))
	case 22:
		emit(experiments.RunFig22(quick))
	case 23:
		emit(experiments.RunFig23(quick))
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %d\n", n)
		os.Exit(2)
	}
}

func runChaos(spec string, quick bool) {
	hdr("Fault matrix")
	cfg := experiments.FaultMatrixConfig{Quick: quick, Events: fleetobs.NewEventLog()}
	if spec != "matrix" {
		cfg.Profiles = strings.Split(spec, ",")
	}
	res, err := experiments.RunFaultMatrix(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fault matrix: %v\n", err)
		os.Exit(2)
	}
	emit(res)
	// The monitors' structured alert stream, scoped per profile: what an
	// operator's pager would have seen during each scenario.
	if cfg.Events.Len() > 0 {
		fmt.Printf("\nSLO alert events (%d):\n", cfg.Events.Len())
		if err := cfg.Events.WriteJSONL(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "alert log: %v\n", err)
		}
	}
}

func runCrash(quick bool) {
	hdr("Crash-point sweep")
	res, err := experiments.RunCrashSweep(experiments.CrashSweepConfig{Quick: quick})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash sweep: %v\n", err)
		os.Exit(2)
	}
	emit(res)
}

func runFleet(quick bool) {
	hdr("Fleet control plane")
	res, err := experiments.RunFleet(experiments.FleetConfig{Quick: quick})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		os.Exit(2)
	}
	emit(res)
}

func runExtra(name string, quick bool) {
	switch name {
	case "partsize":
		hdr("Extra: part-size ablation")
		experiments.RunPartSizeAblation(quick).Print(os.Stdout)
	case "overlay":
		hdr("Extra: overlay relay ablation")
		experiments.RunOverlayAblation(quick).Print(os.Stdout)
	case "pipeline":
		hdr("Extra: pipelined data plane ablation")
		emit(experiments.RunPipeline(quick))
	default:
		fmt.Fprintf(os.Stderr, "unknown extra %q\n", name)
		os.Exit(2)
	}
}

func hdr(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}
