// Command profile runs AReplica's offline performance profiler against the
// simulated clouds for one replication path and prints the fitted model
// parameters (§5.3): I, D, P per execution region; S, C, C' per
// (src,dst,loc) path with the between-/within-instance variance split; the
// notification delay T_n; and the resulting replication-time predictions
// across parallelism levels.
//
// Usage:
//
//	profile -src aws:us-east-1 -dst azure:eastus
//	profile -src gcp:us-east1 -dst aws:eu-west-1 -rounds 20 -size 1GB
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/telemetry"
	"repro/internal/world"
)

func main() {
	var (
		srcFlag    = flag.String("src", "aws:us-east-1", "source region")
		dstFlag    = flag.String("dst", "azure:eastus", "destination region")
		rounds     = flag.Int("rounds", 12, "profiling samples per parameter")
		sizeFlag   = flag.String("size", "1GB", "object size for the prediction sweep")
		pct        = flag.Float64("percentile", 0.99, "prediction percentile")
		out        = flag.String("o", "", "write the fitted profile as JSON to this file")
		traceOut   = flag.String("trace", "", "write profiling spans as Chrome trace_event JSON to this file")
		metricsOut = flag.String("metrics", "", "write the run's aggregate metrics to this file")
		critpath   = flag.Bool("critpath", false, "print the critical-path delay attribution of the profiling runs")
	)
	flag.Parse()

	src, err := cloud.ParseRegionID(*srcFlag)
	if err != nil {
		fatal(err)
	}
	dst, err := cloud.ParseRegionID(*dstFlag)
	if err != nil {
		fatal(err)
	}
	size, err := parseSize(*sizeFlag)
	if err != nil {
		fatal(err)
	}

	w := world.New()
	if *traceOut != "" || *critpath {
		w.Tracer.Enable()
	}
	p := profiler.New(w)
	p.Rounds = *rounds
	m := model.New()
	fmt.Printf("profiling %s -> %s (%d rounds per parameter)...\n\n", src, dst, *rounds)
	p.FitRule(m, src, dst)

	fmt.Printf("notification delay T_n(%s): %s s\n\n", src, m.Notify(src))
	for _, loc := range []cloud.RegionID{src, dst} {
		lp, _ := m.Loc(loc)
		fmt.Printf("execution region %s:\n", loc)
		fmt.Printf("  I (invoke API)        %s s\n", lp.I)
		fmt.Printf("  D (startup delay)     %s s\n", lp.D)
		fmt.Printf("  P (sched postponement)%s s\n", lp.P)
		pp, _ := m.Path(model.PathKey{Src: src, Dst: dst, Loc: loc})
		fmt.Printf("  S (client setup)      %s s\n", pp.S)
		fmt.Printf("  C (per 8MB chunk)     mu=%.4f between=%.4f within=%.4f s\n", pp.C.Mu, pp.C.Between, pp.C.Within)
		fmt.Printf("  C' (pool scheduling)  mu=%.4f between=%.4f within=%.4f s\n\n", pp.Cp.Mu, pp.Cp.Between, pp.Cp.Within)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := m.Export(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote profile to %s\n\n", *out)
	}

	fmt.Printf("predicted replication time for %s at p%.0f (seconds):\n", *sizeFlag, *pct*100)
	fmt.Printf("%6s %14s %14s\n", "n", "at "+shortName(src), "at "+shortName(dst))
	for n := 1; n <= 512; n *= 2 {
		fmt.Printf("%6d", n)
		for _, loc := range []cloud.RegionID{src, dst} {
			local := n == 1 && loc == src && size <= 32<<20
			d, err := m.ReplTime(src, dst, loc, size, n, local)
			if err != nil {
				fmt.Printf(" %14s", "-")
				continue
			}
			fmt.Printf(" %14.2f", d.Quantile(*pct))
		}
		fmt.Println()
	}

	if *critpath {
		bds := w.Tracer.CriticalPaths()
		fmt.Printf("\ncritical-path attribution of the profiling workload (%d traces):\n", len(bds))
		if err := telemetry.Aggregate(bds).WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *critpath || *traceOut != "" {
		fmt.Println("\ntrace retention:")
		if err := w.Tracer.WriteRetentionSummary(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *traceOut != "" {
		if err := writeFile(*traceOut, w.Tracer.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote trace to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, w.Metrics.WriteText); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func shortName(id cloud.RegionID) string {
	s := string(id)
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i]
	}
	return s
}

func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profile:", err)
	os.Exit(1)
}
