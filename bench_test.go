package areplica_test

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (quick mode) under `go test -bench`, reporting the headline
// numbers as custom benchmark metrics so regressions in the reproduction's
// *shape* are visible in benchmark diffs:
//
//	go test -bench=. -benchmem
//
// Absolute numbers are simulator outputs, not testbed measurements; the
// metrics to watch are the ratios (AReplica vs baseline) and the SLO
// attainment/tail figures.

import (
	"math/rand"
	"testing"

	"repro/internal/cloud"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func benchOnce(b *testing.B, run func()) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkTable1FromAWS(b *testing.B) {
	var res *experiments.TableResult
	benchOnce(b, func() {
		res = experiments.RunTable(experiments.TableConfig{Source: experiments.AWSEast, Quick: true})
	})
	reportTable(b, res)
}

func BenchmarkTable2FromAzure(b *testing.B) {
	var res *experiments.TableResult
	benchOnce(b, func() {
		res = experiments.RunTable(experiments.TableConfig{Source: experiments.AzureEast, Quick: true})
	})
	reportTable(b, res)
}

func BenchmarkTable3FromGCP(b *testing.B) {
	var res *experiments.TableResult
	benchOnce(b, func() {
		res = experiments.RunTable(experiments.TableConfig{Source: experiments.GCPEast, Quick: true})
	})
	reportTable(b, res)
}

// reportTable emits the mean delay-reduction versus the best baseline and
// the mean AReplica delay, the two headline metrics of Tables 1-3.
func reportTable(b *testing.B, res *experiments.TableResult) {
	var reduction, delay float64
	var n int
	for si := range res.Sizes {
		for di := range res.Dests {
			reduction += res.DelayReduction(si, di)
			delay += res.AReplica[si][di].DelayS
			n++
		}
	}
	b.ReportMetric(100*reduction/float64(n), "%delay-reduction")
	b.ReportMetric(delay/float64(n), "s/replication")
}

func BenchmarkTable4ModelVsMeasured(b *testing.B) {
	var res *experiments.Table4Result
	benchOnce(b, func() { res = experiments.RunTable4(true) })
	var ratio float64
	for _, e := range res.Entries {
		ratio += e.PredMean / e.MeasuredMean
	}
	b.ReportMetric(ratio/float64(len(res.Entries)), "pred/measured")
}

func BenchmarkFig2TraceSizes(b *testing.B) {
	var res *experiments.Fig2Result
	benchOnce(b, func() { res = experiments.RunFig2(true) })
	var le1MB float64
	for i := 0; i <= 4; i++ {
		le1MB += res.CountPct[i]
	}
	b.ReportMetric(le1MB, "%puts<=1MB")
}

func BenchmarkFig3TraceThroughput(b *testing.B) {
	var res *experiments.Fig3Result
	benchOnce(b, func() { res = experiments.RunFig3(true) })
	lo, hi := res.MBps[0], res.MBps[0]
	for _, v := range res.MBps {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	b.ReportMetric(hi/(lo+0.01), "x-rate-swing")
}

func BenchmarkFig4SkyplaneBreakdown(b *testing.B) {
	var res *experiments.Fig4Result
	benchOnce(b, func() { res = experiments.RunFig4() })
	b.ReportMetric(res.Breakdown.Total().Seconds(), "s/transfer")
	b.ReportMetric(100*float64(res.Breakdown.Transfer)/float64(res.Breakdown.Total()), "%time-in-transfer")
}

func BenchmarkFig5SkyplaneKeepAlive(b *testing.B) {
	var res *experiments.Fig5Result
	benchOnce(b, func() { res = experiments.RunFig5(true) })
	b.ReportMetric(res.Policies[0].MaxS, "s/max-delay-5min")
	b.ReportMetric(res.Policies[2].VMCost/res.Policies[0].VMCost, "cost-20s/5min")
}

func BenchmarkFig6BandwidthVsConfig(b *testing.B) {
	var res *experiments.Fig6Result
	benchOnce(b, func() { res = experiments.RunFig6(true) })
	var best float64
	for _, p := range res.Panels["aws:us-east-1"] {
		if p.DownloadMBps > best {
			best = p.DownloadMBps
		}
	}
	b.ReportMetric(best, "MiBps-peak")
}

func BenchmarkFig7Scaling(b *testing.B) {
	var res *experiments.Fig7Result
	benchOnce(b, func() { res = experiments.RunFig7(true) })
	s := res.Series[0]
	first := s.MBps[0] / float64(s.Counts[0])
	last := s.MBps[len(s.MBps)-1] / float64(s.Counts[len(s.Counts)-1])
	b.ReportMetric(last/first, "linearity")
}

func BenchmarkFig8Asymmetry(b *testing.B) {
	var res *experiments.Fig8Result
	benchOnce(b, func() { res = experiments.RunFig8(true) })
	byLabel := map[string]experiments.Fig8Bar{}
	for _, bar := range res.Bars {
		byLabel[bar.Label] = bar
	}
	b.ReportMetric(byLabel["AWS2Azure@AWS"].MeanMBps/byLabel["AWS2Azure@Azure"].MeanMBps, "aws/azure-side")
}

func BenchmarkFig9InstanceVariability(b *testing.B) {
	var res *experiments.Fig9Result
	benchOnce(b, func() { res = experiments.RunFig9() })
	var means []float64
	for _, samples := range res.Instances {
		var sum float64
		for _, s := range samples {
			sum += s.MBps
		}
		means = append(means, sum/float64(len(samples)))
	}
	b.ReportMetric(stats.Percentile(means, 100)/stats.Percentile(means, 0), "x-instance-spread")
}

func BenchmarkFig16Bulk(b *testing.B) {
	var res *experiments.BulkResult
	benchOnce(b, func() { res = experiments.RunFig16(true) })
	var speedup float64
	for _, p := range res.Pairs {
		speedup += p.SkyplaneS / p.AReplicaS
	}
	b.ReportMetric(speedup/float64(len(res.Pairs)), "x-faster-than-skyplane")
}

func BenchmarkFig17Scheduling(b *testing.B) {
	var res *experiments.Fig17Result
	benchOnce(b, func() { res = experiments.RunFig17(true) })
	b.ReportMetric(res.FairTaskSeconds/res.PoolTaskSeconds, "x-pool-speedup")
}

func BenchmarkFig18ModelAccuracyFastPath(b *testing.B) {
	var res *experiments.ModelAccuracyResult
	benchOnce(b, func() {
		res = experiments.RunModelAccuracy("aws:us-east-1", "azure:eastus", true)
	})
	b.ReportMetric(res.PredictedN32Mean/stats.Mean(res.ActualN32), "pred/measured-n32")
}

func BenchmarkFig19ModelAccuracySlowPath(b *testing.B) {
	var res *experiments.ModelAccuracyResult
	benchOnce(b, func() {
		res = experiments.RunModelAccuracy("azure:eastus", "gcp:asia-northeast1", true)
	})
	b.ReportMetric(res.PredictedN32Mean/stats.Mean(res.ActualN32), "pred/measured-n32")
}

func BenchmarkFig20RegionSelection(b *testing.B) {
	var res *experiments.Fig20Result
	benchOnce(b, func() {
		res = experiments.RunFig20("azure:southeastasia", []cloud.RegionID{
			"gcp:europe-west6", "gcp:us-east1",
		}, true)
	})
	var static, dynamic float64
	for _, row := range res.Rows {
		static += (row.SrcSideS + row.DstSideS) / 2
		dynamic += row.DynamicS
	}
	b.ReportMetric(static/dynamic, "x-vs-static-avg")
}

func BenchmarkFig21Changelog(b *testing.B) {
	var res *experiments.Fig21Result
	benchOnce(b, func() { res = experiments.RunFig21(true) })
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.SkyplaneCost/last.AReplicaLogCost, "x-cheaper-than-skyplane")
}

func BenchmarkFig22Batching(b *testing.B) {
	var res *experiments.Fig22Result
	benchOnce(b, func() { res = experiments.RunFig22(true) })
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(last.CostPerMinUnbatched/last.CostPerMinBatched, "x-cost-saving")
	b.ReportMetric(100*last.AttainmentBatched, "%slo-attainment")
}

func BenchmarkFig23Trace(b *testing.B) {
	var res *experiments.Fig23Result
	benchOnce(b, func() { res = experiments.RunFig23(true) })
	b.ReportMetric(res.AReplicaOverall, "s/p99.99-areplica")
	b.ReportMetric(res.S3RTCOverall, "s/p99.99-s3rtc")
}

func BenchmarkPartSizeAblation(b *testing.B) {
	var res *experiments.PartSizeResult
	benchOnce(b, func() { res = experiments.RunPartSizeAblation(true) })
	b.ReportMetric(res.Rows[len(res.Rows)-1].MeanS/res.Rows[1].MeanS, "x-big-part-penalty")
}

// BenchmarkGumbelVsMonteCarlo measures the planner-facing speedup of the
// extreme-value shortcut the paper uses for large n (§5.3).
func BenchmarkGumbelVsMonteCarlo(b *testing.B) {
	base := stats.N(10, 2)
	b.Run("monte-carlo-n256", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			e := stats.MonteCarloMax(rng, 256, 1500, func(r *rand.Rand, _ int) float64 { return base.Sample(r) })
			_ = e.Quantile(0.99)
		}
	})
	b.Run("gumbel-n256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = stats.MaxOfNormals(base, 256).Quantile(0.99)
		}
	})
}

func BenchmarkOverlayRelayAblation(b *testing.B) {
	var res *experiments.OverlayResult
	benchOnce(b, func() { res = experiments.RunOverlayAblation(true) })
	b.ReportMetric(res.DirectS/res.RelayS, "x-relay-speedup")
	b.ReportMetric(res.RelayCost/res.DirectCost, "x-relay-cost")
}
