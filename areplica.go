// Package areplica is a from-scratch reproduction of AReplica, the
// serverless cross-cloud object replication system of "Serverless
// Replication of Object Storage across Multi-Vendor Clouds and Regions"
// (EuroSys '26). It bundles a deterministic simulation of three clouds
// (object storage, serverless functions, NoSQL databases, VMs, wide-area
// links, list-price billing) with the paper's full replication stack:
// distribution-aware performance modelling, SLO-compliant strategy
// planning, decentralized part-granularity scheduling, eventual
// consistency via replication locks and optimistic validation, changelog
// propagation, and SLO-bounded batching.
//
// Quick start:
//
//	sim := areplica.NewSim()
//	sim.MustCreateBucket("aws:us-east-1", "photos")
//	sim.MustCreateBucket("azure:eastus", "photos-replica")
//	rep, err := sim.Deploy(areplica.Rule{
//		SrcRegion: "aws:us-east-1", SrcBucket: "photos",
//		DstRegion: "azure:eastus", DstBucket: "photos-replica",
//		SLO: 30 * time.Second,
//	})
//	// handle err
//	sim.PutObject("aws:us-east-1", "photos", "cat.jpg", 2<<20)
//	sim.Wait() // run the simulation to completion
//	fmt.Println(rep.Delays())
//
// Everything runs on a virtual clock: simulated hours complete in
// milliseconds, deterministically.
package areplica

import (
	"fmt"
	"io"
	"time"

	"repro/internal/changelog"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fleetobs"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/world"
)

// Sim is a simulated three-cloud environment with AReplica deployable on
// top. Create one with NewSim from the goroutine that will drive it.
type Sim struct {
	world  *world.World
	model  *model.Model
	events *fleetobs.EventLog
}

// NewSim builds the 13-region, three-cloud world the paper evaluates on.
func NewSim() *Sim {
	return &Sim{world: world.New(), model: model.New(), events: fleetobs.NewEventLog()}
}

// World exposes the underlying simulation for advanced use (experiments,
// custom baselines).
func (s *Sim) World() *world.World { return s.world }

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.world.Clock.Now() }

// Wait runs the simulation until all in-flight activity (replications,
// timers, notifications) has drained.
func (s *Sim) Wait() { s.world.Clock.Quiesce() }

// Sleep advances virtual time by d from the caller's perspective.
func (s *Sim) Sleep(d time.Duration) { s.world.Clock.Sleep(d) }

// Go runs fn as a concurrent simulation actor (use instead of the go
// statement inside the simulation).
func (s *Sim) Go(fn func()) { s.world.Clock.Go(fn) }

// Regions lists the available region identifiers.
func (s *Sim) Regions() []string {
	var out []string
	for _, r := range cloud.AllRegions() {
		out = append(out, string(r.ID()))
	}
	return out
}

func (s *Sim) region(id string) (cloud.RegionID, error) {
	return cloud.ParseRegionID(id)
}

// CreateBucket creates a bucket in a region.
func (s *Sim) CreateBucket(region, bucket string) error {
	rid, err := s.region(region)
	if err != nil {
		return err
	}
	return s.world.Region(rid).Obj.CreateBucket(bucket, false)
}

// MustCreateBucket is CreateBucket but panics on error (examples, tests).
func (s *Sim) MustCreateBucket(region, bucket string) {
	if err := s.CreateBucket(region, bucket); err != nil {
		panic(err)
	}
}

// ObjectInfo describes a stored object.
type ObjectInfo struct {
	Key     string
	Size    int64
	ETag    string
	Created time.Time
}

// PutObject writes a synthetic object of the given size (content derived
// from the key and version) and returns its ETag.
func (s *Sim) PutObject(region, bucket, key string, size int64) (ObjectInfo, error) {
	rid, err := s.region(region)
	if err != nil {
		return ObjectInfo{}, err
	}
	svc := s.world.Region(rid).Obj
	seed := uint64(simrand.Seed(region, bucket, key, s.Now().String()))
	res, err := svc.Put(bucket, key, objstore.BlobOfSize(size, seed))
	if err != nil {
		return ObjectInfo{}, err
	}
	return ObjectInfo{Key: key, Size: size, ETag: res.ETag, Created: s.Now()}, nil
}

// PutBytes writes a literal object (small payloads).
func (s *Sim) PutBytes(region, bucket, key string, data []byte) (ObjectInfo, error) {
	rid, err := s.region(region)
	if err != nil {
		return ObjectInfo{}, err
	}
	res, err := s.world.Region(rid).Obj.Put(bucket, key, objstore.BlobFromBytes(data))
	if err != nil {
		return ObjectInfo{}, err
	}
	return ObjectInfo{Key: key, Size: int64(len(data)), ETag: res.ETag, Created: s.Now()}, nil
}

// HeadObject returns an object's metadata.
func (s *Sim) HeadObject(region, bucket, key string) (ObjectInfo, error) {
	rid, err := s.region(region)
	if err != nil {
		return ObjectInfo{}, err
	}
	m, err := s.world.Region(rid).Obj.Head(bucket, key)
	if err != nil {
		return ObjectInfo{}, err
	}
	return ObjectInfo{Key: m.Key, Size: m.Size, ETag: m.ETag, Created: m.Created}, nil
}

// DeleteObject removes an object.
func (s *Sim) DeleteObject(region, bucket, key string) error {
	rid, err := s.region(region)
	if err != nil {
		return err
	}
	return s.world.Region(rid).Obj.Delete(bucket, key)
}

// CopyObject performs a same-region server-side copy and returns the new
// object's info.
func (s *Sim) CopyObject(region, bucket, srcKey, dstKey string) (ObjectInfo, error) {
	rid, err := s.region(region)
	if err != nil {
		return ObjectInfo{}, err
	}
	res, err := s.world.Region(rid).Obj.Copy(bucket, srcKey, bucket, dstKey, "")
	if err != nil {
		return ObjectInfo{}, err
	}
	m, err := s.world.Region(rid).Obj.Head(bucket, dstKey)
	if err != nil {
		return ObjectInfo{}, err
	}
	_ = res
	return ObjectInfo{Key: m.Key, Size: m.Size, ETag: m.ETag, Created: m.Created}, nil
}

// ExportProfile writes the sim's fitted performance-model parameters as
// JSON, so later runs can skip profiling via ImportProfile.
func (s *Sim) ExportProfile(w io.Writer) error { return s.model.Export(w) }

// ImportProfile loads parameters written by ExportProfile. Deployments
// whose paths are covered skip their profiling phase.
func (s *Sim) ImportProfile(r io.Reader) error { return s.model.Import(r) }

// CostTotal returns the dollars accrued so far across all simulated cloud
// services.
func (s *Sim) CostTotal() float64 { return s.world.Meter.Total() }

// CostBreakdown itemizes accrued cost (egress, function compute, KV
// operations, request fees, VM time, ...).
func (s *Sim) CostBreakdown() map[string]float64 { return s.world.Meter.Breakdown() }

// Rule configures one replication deployment.
type Rule struct {
	SrcRegion, SrcBucket string
	DstRegion, DstBucket string

	// SLO is the target replication delay measured from the source PUT;
	// zero always chooses the fastest plan.
	SLO time.Duration
	// Percentile is the confidence at which plans must meet the SLO
	// (default 0.99).
	Percentile float64

	// KeyPrefix scopes the rule to keys with this prefix (empty = all).
	KeyPrefix string

	// Relays lists optional overlay execution regions (§6's extension):
	// the planner may run replicators at a relay when its two shorter
	// legs beat the direct path, at the cost of a second egress charge.
	Relays []string

	// Batching enables SLO-bounded batching (§5.4); requires SLO > 0.
	Batching bool
	// Changelog enables changelog propagation (§5.4); register hints via
	// Replication.RegisterCopy / RegisterConcat.
	Changelog bool

	// Scrub attaches an anti-entropy scrubber: a periodic Merkle-tree
	// comparison of the two bucket listings that repairs divergence
	// (missed notifications, stale replicas, orphans) through the normal
	// replication path. Drive it with Replication.StartScrub or
	// Replication.ScrubUntilClean.
	Scrub bool
	// ScrubCadence is the virtual-time interval between scrub rounds
	// (0 = derived from DivergenceSLO, else the 60s default).
	ScrubCadence time.Duration
	// DivergenceSLO declares how long a divergent key may stay unrepaired;
	// a scrub cadence of DivergenceSLO/2 is derived from it when
	// ScrubCadence is unset, and repairs of older versions are counted as
	// SLO violations.
	DivergenceSLO time.Duration

	// Monitor attaches an SLO burn-rate monitor to the rule: replication
	// lag, DLQ depth and (with Scrub) divergence are evaluated on the
	// virtual clock, and alert transitions append to the sim's shared
	// event log (Sim.WriteEvents). Read the rule's current row with
	// Replication.Health.
	Monitor bool
	// LagTarget is the monitored per-event lag objective (default 30s).
	LagTarget time.Duration
	// LagObjective is the fraction of events that must replicate within
	// LagTarget (default 0.99).
	LagObjective float64
	// MaxDLQ is the dead-letter depth above which the monitor pages
	// (default 0: any parked event pages).
	MaxDLQ int

	// ProfileRounds overrides profiling effort (default 12 samples per
	// parameter).
	ProfileRounds int

	// DisableDoubleBuffer turns off the pipelined data plane (each
	// replicator serializes a part's download and upload again).
	DisableDoubleBuffer bool
	// ClaimBatch is how many parts a replicator claims per part-pool KV
	// operation (0 = default of 4; 1 = unbatched per-part claims).
	ClaimBatch int
	// HedgeBudget bounds speculative duplication of in-flight tail parts
	// once the pool drains (0 = default of 4; negative disables hedging).
	HedgeBudget int
	// DisableAdaptiveParts pins the distributed part size to the 8 MB
	// default instead of adapting it per object.
	DisableAdaptiveParts bool
}

// Replication is a deployed rule.
type Replication struct {
	sim *Sim
	svc *core.Service
}

// Deploy profiles the rule's paths and wires AReplica to the source
// bucket. Buckets must exist.
func (s *Sim) Deploy(r Rule) (*Replication, error) {
	src, err := s.region(r.SrcRegion)
	if err != nil {
		return nil, err
	}
	dst, err := s.region(r.DstRegion)
	if err != nil {
		return nil, err
	}
	var relays []cloud.RegionID
	for _, rr := range r.Relays {
		id, err := s.region(rr)
		if err != nil {
			return nil, err
		}
		relays = append(relays, id)
	}
	svc, err := core.Deploy(s.world, core.Options{
		Rule: engine.Rule{
			Src: src, Dst: dst,
			SrcBucket: r.SrcBucket, DstBucket: r.DstBucket,
			SLO: r.SLO, Percentile: r.Percentile,
			KeyPrefix: r.KeyPrefix,
			DisableDoubleBuffer:  r.DisableDoubleBuffer,
			ClaimBatch:           r.ClaimBatch,
			HedgeBudget:          r.HedgeBudget,
			DisableAdaptiveParts: r.DisableAdaptiveParts,
		},
		EnableChangelog: r.Changelog,
		EnableBatching:  r.Batching,
		EnableScrub:     r.Scrub,
		ScrubCadence:    r.ScrubCadence,
		DivergenceSLO:   r.DivergenceSLO,
		EnableMonitor:   r.Monitor,
		MonitorSLO: fleetobs.SLO{
			LagTarget: r.LagTarget,
			Objective: r.LagObjective,
			MaxDLQ:    r.MaxDLQ,
		},
		Events:        s.events,
		Relays:        relays,
		ProfileRounds: r.ProfileRounds,
		Model:         s.model, // deployments share profiling work
	})
	if err != nil {
		return nil, err
	}
	return &Replication{sim: s, svc: svc}, nil
}

// DelayRecord reports one source write's replication delay.
type DelayRecord struct {
	Key       string
	Size      int64
	EventTime time.Time
	Delay     time.Duration
}

// Records returns per-write replication delays resolved so far.
func (r *Replication) Records() []DelayRecord {
	var out []DelayRecord
	for _, rec := range r.svc.Tracker().Records() {
		out = append(out, DelayRecord{Key: rec.Key, Size: rec.Size, EventTime: rec.EventTime, Delay: rec.Delay})
	}
	return out
}

// Delays returns the resolved replication delays.
func (r *Replication) Delays() []time.Duration {
	var out []time.Duration
	for _, rec := range r.svc.Tracker().Records() {
		out = append(out, rec.Delay)
	}
	return out
}

// SyncExisting backfills objects that existed in the source bucket before
// the rule was deployed (or that have drifted), returning how many were
// scheduled. Run the simulation (Wait) afterwards to let them converge.
func (r *Replication) SyncExisting() (int, error) {
	return r.svc.Engine.Backfill()
}

// Pending reports source writes not yet replicated.
func (r *Replication) Pending() int { return r.svc.Tracker().PendingCount() }

// DLQSize reports events parked in the dead-letter queue after exhausting
// their retries and automatic redrives.
func (r *Replication) DLQSize() int { return len(r.svc.Engine.DLQ()) }

// RedriveDLQ re-dispatches every dead-lettered event with a fresh redrive
// budget (the operator's "redrive" button), returning how many it
// re-enqueued. Run the simulation (Wait) afterwards to let them converge.
func (r *Replication) RedriveDLQ() int { return r.svc.Engine.RedriveDLQ() }

// Health is one rule's current health row (requires Rule.Monitor).
type Health struct {
	Rule       string  // "src/bucket->dst/bucket"
	Dest       string  // destination region
	State      string  // "ok" | "warn" | "page"
	LagP50S    float64 // replication-lag percentiles, seconds
	LagP99S    float64
	Backlog    int     // events awaiting replication
	OldestAgeS float64 // age of the oldest unreplicated event, seconds
	DLQ        int     // dead-letter depth
	BurnShort  float64 // short-window error-budget burn rate
	BurnLong   float64 // long-window error-budget burn rate
	Alerts     int     // warn/page transitions so far
}

// Health returns the rule's current health row at the virtual instant.
func (r *Replication) Health() (Health, error) {
	if r.svc.Monitor == nil {
		return Health{}, fmt.Errorf("areplica: monitoring is not enabled on this rule")
	}
	h := r.svc.Monitor.Health()
	return Health{
		Rule: h.Rule, Dest: h.Dest, State: h.State,
		LagP50S: h.LagP50S, LagP99S: h.LagP99S,
		Backlog: h.Backlog, OldestAgeS: h.OldestAgeS, DLQ: h.DLQ,
		BurnShort: h.BurnShort, BurnLong: h.BurnLong, Alerts: h.Alerts,
	}, nil
}

// PollMonitor re-evaluates the rule's SLOs at the current virtual
// instant. The monitor already polls on every completed task; drivers
// call this at loop points so quiet fault windows (nothing completing)
// still trip the burn-rate alerts.
func (r *Replication) PollMonitor() {
	if r.svc.Monitor != nil {
		r.svc.Monitor.Poll()
	}
}

// AlertCount reports the rule's warn/page transitions so far (0 when
// monitoring is off).
func (r *Replication) AlertCount() int { return r.svc.Monitor.AlertCount() }

// WriteEvents writes the sim's structured alert log as JSONL — one event
// per line, deterministic for a deterministic run.
func (s *Sim) WriteEvents(w io.Writer) error { return s.events.WriteJSONL(w) }

// EventCount reports how many alert events monitors have emitted.
func (s *Sim) EventCount() int { return s.events.Len() }

// WriteMetricsProm dumps the sim's metric registry — including the
// per-rule and per-destination labelled families — in the Prometheus
// text exposition format.
func (s *Sim) WriteMetricsProm(w io.Writer) error { return s.world.Metrics.WritePromText(w) }

// WriteHealthTable renders the health rows of the given replications
// (all monitored ones of this sim when none are passed explicitly is not
// inferred — pass what you deployed) as an aligned text table.
func (s *Sim) WriteHealthTable(w io.Writer, reps ...*Replication) error {
	var rows []fleetobs.Health
	for _, rep := range reps {
		if rep != nil && rep.svc.Monitor != nil {
			rows = append(rows, rep.svc.Monitor.Health())
		}
	}
	return fleetobs.WriteHealthTable(w, rows)
}

// RegisterCopy hints that object dstKey (with the given ETag) was created
// by copying srcKey at version srcETag; the destination can then mirror
// the copy locally at near-zero cost.
func (r *Replication) RegisterCopy(dstKey, dstETag, srcKey, srcETag string) error {
	return r.svc.RegisterChangelog(changelog.Log{
		Key: dstKey, ETag: dstETag, Op: changelog.OpCopy,
		Sources: []changelog.Source{{Key: srcKey, ETag: srcETag}},
	})
}

// ConcatSource names one input of a concatenation changelog.
type ConcatSource struct {
	Key  string
	ETag string
}

// RegisterConcat hints that dstKey was produced by concatenating the
// sources in order.
func (r *Replication) RegisterConcat(dstKey, dstETag string, sources []ConcatSource) error {
	srcs := make([]changelog.Source, len(sources))
	for i, s := range sources {
		srcs[i] = changelog.Source{Key: s.Key, ETag: s.ETag}
	}
	return r.svc.RegisterChangelog(changelog.Log{
		Key: dstKey, ETag: dstETag, Op: changelog.OpConcat, Sources: srcs,
	})
}

// ScrubReport summarizes anti-entropy activity (requires Rule.Scrub).
type ScrubReport struct {
	Rounds        int   // scrub rounds run
	Divergent     int   // divergent keys found in the last round
	Repairs       int   // repairs enqueued in the last round (incl. redrives)
	SLOViolations int   // repaired versions older than the divergence SLO
	DigestBytes   int64 // digest traffic shipped in the last round
	Clean         bool  // last round found the pair converged
}

// StartScrub launches the periodic anti-entropy loop on the virtual clock;
// it stops itself after consecutive clean rounds so Wait can drain.
func (r *Replication) StartScrub() error {
	if r.svc.Scrubber == nil {
		return fmt.Errorf("areplica: scrub is not enabled on this rule")
	}
	r.svc.Scrubber.Start()
	return nil
}

// StopScrub makes a running scrub loop exit after its current round.
func (r *Replication) StopScrub() {
	if r.svc.Scrubber != nil {
		r.svc.Scrubber.Stop()
	}
}

// ScrubUntilClean runs scrub rounds a cadence apart until the bucket pair
// is verifiably converged (two consecutive clean Merkle exchanges), and
// reports the outcome.
func (r *Replication) ScrubUntilClean() (ScrubReport, error) {
	if r.svc.Scrubber == nil {
		return ScrubReport{}, fmt.Errorf("areplica: scrub is not enabled on this rule")
	}
	rounds, last, err := r.svc.Scrubber.RunUntilClean()
	return ScrubReport{
		Rounds:        rounds,
		Divergent:     last.Divergent,
		Repairs:       last.RepairsDispatched + last.RepairsRedriven,
		SLOViolations: last.SLOViolations,
		DigestBytes:   last.DigestBytes,
		Clean:         last.Clean,
	}, err
}

// Service exposes the underlying core service for experiments.
func (r *Replication) Service() *core.Service { return r.svc }

// String implements fmt.Stringer.
func (r *Replication) String() string {
	return fmt.Sprintf("replication %s/%s -> %s/%s",
		r.svc.Rule.Src, r.svc.Rule.SrcBucket, r.svc.Rule.Dst, r.svc.Rule.DstBucket)
}

// Summary aggregates a replication's delay and activity statistics.
type Summary struct {
	Resolved   int
	Pending    int
	DeadLetter int

	P50, P99, P9999, Max time.Duration

	// SLOAttainment is the fraction of resolved writes within the rule's
	// SLO (1.0 when no SLO is set).
	SLOAttainment float64

	// ModelObserved and ModelRefreshes report the runtime logger's
	// activity (§4).
	ModelObserved  int64
	ModelRefreshes int64
}

// Summary computes the replication's current statistics.
func (r *Replication) Summary() Summary {
	recs := r.svc.Tracker().Records()
	s := Summary{
		Resolved:   len(recs),
		Pending:    r.svc.Tracker().PendingCount(),
		DeadLetter: len(r.svc.Engine.DLQ()),
	}
	lst := r.svc.Logger.Stats()
	s.ModelObserved, s.ModelRefreshes = lst.Observed, lst.Refreshes
	if len(recs) == 0 {
		s.SLOAttainment = 1
		return s
	}
	secs := make([]float64, len(recs))
	within := 0
	for i, rec := range recs {
		secs[i] = rec.Delay.Seconds()
		if r.svc.Rule.SLO <= 0 || rec.Delay <= r.svc.Rule.SLO {
			within++
		}
	}
	q := func(p float64) time.Duration {
		return simclock.Seconds(stats.Percentile(secs, p))
	}
	s.P50, s.P99, s.P9999, s.Max = q(50), q(99), q(99.99), q(100)
	s.SLOAttainment = float64(within) / float64(len(recs))
	return s
}

// String implements fmt.Stringer for Summary.
func (s Summary) String() string {
	return fmt.Sprintf("resolved=%d pending=%d dlq=%d p50=%.2fs p99=%.2fs p99.99=%.2fs max=%.2fs slo=%.2f%%",
		s.Resolved, s.Pending, s.DeadLetter,
		s.P50.Seconds(), s.P99.Seconds(), s.P9999.Seconds(), s.Max.Seconds(),
		100*s.SLOAttainment)
}

// ReadObject simulates an end user near clientRegion fetching an object
// from a bucket in objRegion, returning the user-visible latency (request
// RTT plus transfer). Cross-region reads accrue egress cost — the repeated
// charge that replication near users eliminates (§2).
func (s *Sim) ReadObject(clientRegion, objRegion, bucket, key string) (time.Duration, error) {
	cid, err := s.region(clientRegion)
	if err != nil {
		return 0, err
	}
	oid, err := s.region(objRegion)
	if err != nil {
		return 0, err
	}
	svc := s.world.Region(oid)
	return s.world.ClientRead(cloud.MustLookup(cid), cloud.MustLookup(oid), svc.Obj, bucket, key)
}
