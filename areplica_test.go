package areplica

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// newDeployedSim returns a sim with buckets and one deployed rule, using
// reduced profiling effort to keep tests quick.
func newDeployedSim(t *testing.T, mutate func(*Rule)) (*Sim, *Replication) {
	t.Helper()
	sim := NewSim()
	sim.MustCreateBucket("aws:us-east-1", "src")
	sim.MustCreateBucket("gcp:us-east1", "dst")
	rule := Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "src",
		DstRegion: "gcp:us-east1", DstBucket: "dst",
		ProfileRounds: 6,
	}
	if mutate != nil {
		mutate(&rule)
	}
	rep, err := sim.Deploy(rule)
	if err != nil {
		t.Fatal(err)
	}
	return sim, rep
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sim, rep := newDeployedSim(t, nil)
	info, err := sim.PutObject("aws:us-east-1", "src", "hello.bin", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	sim.Wait()

	got, err := sim.HeadObject("gcp:us-east1", "dst", "hello.bin")
	if err != nil {
		t.Fatalf("replica missing: %v", err)
	}
	if got.ETag != info.ETag || got.Size != 4<<20 {
		t.Fatalf("replica mismatch: %+v vs %+v", got, info)
	}
	delays := rep.Delays()
	if len(delays) != 1 || delays[0] <= 0 || delays[0] > 20*time.Second {
		t.Fatalf("delays = %v", delays)
	}
	if rep.Pending() != 0 {
		t.Fatal("pending writes remain")
	}
	if sim.CostTotal() <= 0 {
		t.Fatal("no cost accrued")
	}
	if bd := sim.CostBreakdown(); bd["net:egress"] <= 0 {
		t.Fatalf("no egress metered: %v", bd)
	}
}

func TestPutBytesLiteralContent(t *testing.T) {
	sim, _ := newDeployedSim(t, nil)
	info, err := sim.PutBytes("aws:us-east-1", "src", "note.txt", []byte("hello world"))
	if err != nil {
		t.Fatal(err)
	}
	sim.Wait()
	got, err := sim.HeadObject("gcp:us-east1", "dst", "note.txt")
	if err != nil || got.ETag != info.ETag {
		t.Fatalf("literal replica: %v %v", err, got)
	}
}

func TestDeleteReplication(t *testing.T) {
	sim, _ := newDeployedSim(t, nil)
	sim.PutObject("aws:us-east-1", "src", "gone.bin", 1<<20)
	sim.Wait()
	if err := sim.DeleteObject("aws:us-east-1", "src", "gone.bin"); err != nil {
		t.Fatal(err)
	}
	sim.Wait()
	if _, err := sim.HeadObject("gcp:us-east1", "dst", "gone.bin"); err == nil {
		t.Fatal("delete was not replicated")
	}
}

func TestChangelogCopyAvoidsEgress(t *testing.T) {
	sim, rep := newDeployedSim(t, func(r *Rule) { r.Changelog = true })
	// Seed the original and let it replicate normally.
	orig, _ := sim.PutObject("aws:us-east-1", "src", "base.bin", 64<<20)
	sim.Wait()

	egressBefore := sim.CostBreakdown()["net:egress"]
	// COPY at the source with a changelog hint: the copy itself is a fresh
	// PUT of the same content.
	copied, err := sim.CopyObject("aws:us-east-1", "src", "base.bin", "base-copy.bin")
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.RegisterCopy("base-copy.bin", copied.ETag, "base.bin", orig.ETag); err != nil {
		t.Fatal(err)
	}
	sim.Wait()

	got, err := sim.HeadObject("gcp:us-east1", "dst", "base-copy.bin")
	if err != nil || got.ETag != copied.ETag {
		t.Fatalf("changelog copy missing at destination: %v", err)
	}
	if egressAfter := sim.CostBreakdown()["net:egress"]; egressAfter != egressBefore {
		t.Fatalf("changelog copy moved data: egress %v -> %v", egressBefore, egressAfter)
	}
}

func TestBatchingCoalescesUpdates(t *testing.T) {
	sim, rep := newDeployedSim(t, func(r *Rule) {
		r.SLO = 30 * time.Second
		r.Batching = true
	})
	egressAt := func() float64 { return sim.CostBreakdown()["net:egress"] }
	base := egressAt() // profiling during Deploy moved some bytes
	egress := func() float64 { return egressAt() - base }

	// Ten updates in 10 seconds, 30s SLO: batching should collapse most.
	for i := 0; i < 10; i++ {
		if _, err := sim.PutObject("aws:us-east-1", "src", "hot.bin", 16<<20); err != nil {
			t.Fatal(err)
		}
		sim.Sleep(time.Second)
	}
	sim.Wait()

	// All ten versions must be resolved within the SLO...
	delays := rep.Delays()
	if len(delays) != 10 {
		t.Fatalf("resolved %d of 10", len(delays))
	}
	var violations int
	for _, d := range delays {
		if d > 30*time.Second {
			violations++
		}
	}
	if violations > 1 {
		t.Fatalf("%d SLO violations", violations)
	}
	// ...while far fewer than ten transfers actually happened: egress well
	// under 10 x 16MB of cross-cloud movement.
	fullCost := 10 * 2 * 16.0 / 1024 * 0.09 // 10x two legs (only one is cross-cloud)
	if egress() > fullCost*0.7 {
		t.Fatalf("egress %v suggests batching did not coalesce (full would be ~%v)", egress(), fullCost)
	}
}

func TestDeployValidation(t *testing.T) {
	sim := NewSim()
	if _, err := sim.Deploy(Rule{SrcRegion: "aws:nowhere", DstRegion: "gcp:us-east1"}); err == nil {
		t.Fatal("bad source region accepted")
	}
	if _, err := sim.Deploy(Rule{SrcRegion: "aws:us-east-1", DstRegion: "aws:bogus"}); err == nil {
		t.Fatal("bad destination region accepted")
	}
	if _, err := sim.Deploy(Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "a",
		DstRegion: "aws:us-east-1", DstBucket: "b",
	}); err == nil {
		t.Fatal("same-region rule accepted")
	}
	// Batching without an SLO is a configuration error.
	sim.MustCreateBucket("aws:us-east-1", "s")
	sim.MustCreateBucket("azure:eastus", "d")
	if _, err := sim.Deploy(Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "s",
		DstRegion: "azure:eastus", DstBucket: "d",
		Batching: true,
	}); err == nil {
		t.Fatal("batching without SLO accepted")
	}
	// Missing bucket surfaces at subscribe time.
	if _, err := sim.Deploy(Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "missing",
		DstRegion: "azure:eastus", DstBucket: "d",
		ProfileRounds: 4,
	}); err == nil {
		t.Fatal("missing bucket accepted")
	}
}

func TestRegionsListed(t *testing.T) {
	sim := NewSim()
	rs := sim.Regions()
	if len(rs) != 13 {
		t.Fatalf("regions = %d, want 13", len(rs))
	}
}

func TestSharedModelAcrossDeployments(t *testing.T) {
	// Two rules sharing the source region: the second deploy reuses the
	// first's profiled parameters (notify + loc for the shared region).
	sim := NewSim()
	sim.MustCreateBucket("aws:us-east-1", "s")
	sim.MustCreateBucket("azure:eastus", "d1")
	sim.MustCreateBucket("gcp:us-east1", "d2")
	t0 := sim.Now()
	if _, err := sim.Deploy(Rule{SrcRegion: "aws:us-east-1", SrcBucket: "s",
		DstRegion: "azure:eastus", DstBucket: "d1", ProfileRounds: 6}); err != nil {
		t.Fatal(err)
	}
	first := sim.Now().Sub(t0)
	t1 := sim.Now()
	if _, err := sim.Deploy(Rule{SrcRegion: "aws:us-east-1", SrcBucket: "s",
		DstRegion: "gcp:us-east1", DstBucket: "d2", ProfileRounds: 6}); err != nil {
		t.Fatal(err)
	}
	second := sim.Now().Sub(t1)
	// The second deployment skips re-profiling the shared source region
	// and notification path, so it takes less virtual time.
	if second >= first {
		t.Fatalf("second deploy (%v) should reuse profiling from the first (%v)", second, first)
	}
}

func TestKeyPrefixThroughFacade(t *testing.T) {
	sim, rep := newDeployedSim(t, func(r *Rule) { r.KeyPrefix = "models/" })
	sim.PutObject("aws:us-east-1", "src", "models/a.bin", 1<<20)
	sim.PutObject("aws:us-east-1", "src", "tmp/scratch.bin", 1<<20)
	sim.Wait()
	if _, err := sim.HeadObject("gcp:us-east1", "dst", "models/a.bin"); err != nil {
		t.Fatalf("scoped key missing: %v", err)
	}
	if _, err := sim.HeadObject("gcp:us-east1", "dst", "tmp/scratch.bin"); err == nil {
		t.Fatal("out-of-scope key replicated")
	}
	if got := len(rep.Records()); got != 1 {
		t.Fatalf("records = %d", got)
	}
}

func TestSummary(t *testing.T) {
	sim, rep := newDeployedSim(t, func(r *Rule) { r.SLO = 30 * time.Second })
	for i := 0; i < 5; i++ {
		sim.PutObject("aws:us-east-1", "src", "k", 1<<20)
		sim.Sleep(2 * time.Second)
	}
	sim.Wait()
	s := rep.Summary()
	if s.Resolved != 5 || s.Pending != 0 || s.DeadLetter != 0 {
		t.Fatalf("summary = %v", s)
	}
	if s.P50 <= 0 || s.Max < s.P50 || s.P9999 < s.P99 {
		t.Fatalf("percentiles inconsistent: %v", s)
	}
	if s.SLOAttainment != 1.0 {
		t.Fatalf("attainment = %v", s.SLOAttainment)
	}
	if s.ModelObserved == 0 {
		t.Fatalf("logger observed nothing: %v", s)
	}
	if s.String() == "" {
		t.Fatal("empty string form")
	}
	// Empty replication: safe zero summary.
	_, rep2 := newDeployedSim(t, nil)
	s2 := rep2.Summary()
	if s2.Resolved != 0 || s2.SLOAttainment != 1.0 {
		t.Fatalf("empty summary = %v", s2)
	}
}

func TestProfileExportImportSkipsProfiling(t *testing.T) {
	// First sim: profile and export.
	sim1, _ := newDeployedSim(t, nil)
	var buf bytes.Buffer
	if err := sim1.ExportProfile(&buf); err != nil {
		t.Fatal(err)
	}

	// Second sim: import and deploy the same pair; profiling is skipped
	// entirely (no virtual time consumed).
	sim2 := NewSim()
	sim2.MustCreateBucket("aws:us-east-1", "src")
	sim2.MustCreateBucket("gcp:us-east1", "dst")
	if err := sim2.ImportProfile(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	t0 := sim2.Now()
	rep, err := sim2.Deploy(Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "src",
		DstRegion: "gcp:us-east1", DstBucket: "dst",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sim2.Now().Equal(t0) {
		t.Fatal("deploy re-profiled despite an imported profile")
	}
	// And the imported model still drives working replication.
	info, _ := sim2.PutObject("aws:us-east-1", "src", "x.bin", 8<<20)
	sim2.Wait()
	got, err := sim2.HeadObject("gcp:us-east1", "dst", "x.bin")
	if err != nil || got.ETag != info.ETag {
		t.Fatalf("replication with imported profile failed: %v", err)
	}
	_ = rep
}

func TestRelayRuleThroughFacade(t *testing.T) {
	sim := NewSim()
	sim.MustCreateBucket("gcp:us-east1", "s")
	sim.MustCreateBucket("azure:southeastasia", "d")
	rep, err := sim.Deploy(Rule{
		SrcRegion: "gcp:us-east1", SrcBucket: "s",
		DstRegion: "azure:southeastasia", DstBucket: "d",
		Relays:        []string{"aws:us-east-1"},
		ProfileRounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := sim.PutObject("gcp:us-east1", "s", "big.bin", 512<<20)
	sim.Wait()
	got, err := sim.HeadObject("azure:southeastasia", "d", "big.bin")
	if err != nil || got.ETag != info.ETag {
		t.Fatalf("relay-path replication failed: %v", err)
	}
	if rep.Pending() != 0 {
		t.Fatal("pending writes")
	}
	// Invalid relay region is rejected.
	if _, err := sim.Deploy(Rule{
		SrcRegion: "gcp:us-east1", SrcBucket: "s",
		DstRegion: "azure:southeastasia", DstBucket: "d",
		Relays: []string{"aws:moonbase-1"},
	}); err == nil {
		t.Fatal("bogus relay accepted")
	}
}

func TestSyncExistingThroughFacade(t *testing.T) {
	sim := NewSim()
	sim.MustCreateBucket("aws:us-east-1", "src")
	sim.MustCreateBucket("gcp:us-east1", "dst")
	// Data exists before the rule does.
	var infos []ObjectInfo
	for i := 0; i < 3; i++ {
		info, err := sim.PutObject("aws:us-east-1", "src", fmt.Sprintf("pre-%d", i), 2<<20)
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, info)
	}
	sim.Wait()
	rep, err := sim.Deploy(Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "src",
		DstRegion: "gcp:us-east1", DstBucket: "dst",
		ProfileRounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := rep.SyncExisting()
	if err != nil || n != 3 {
		t.Fatalf("SyncExisting = %d, %v", n, err)
	}
	sim.Wait()
	for _, info := range infos {
		got, err := sim.HeadObject("gcp:us-east1", "dst", info.Key)
		if err != nil || got.ETag != info.ETag {
			t.Fatalf("%s not synced: %v", info.Key, err)
		}
	}
	if s := rep.Summary(); s.Resolved != 3 || s.Pending != 0 {
		t.Fatalf("summary = %v", s)
	}
}

func TestRegisterConcatThroughFacade(t *testing.T) {
	sim, rep := newDeployedSim(t, func(r *Rule) { r.Changelog = true })
	// Two segments replicate normally.
	seg0, _ := sim.PutObject("aws:us-east-1", "src", "seg-0", 32<<20)
	seg1, _ := sim.PutObject("aws:us-east-1", "src", "seg-1", 32<<20)
	sim.Wait()

	// Concatenate them at the source (server-side compose) and register
	// the changelog; the destination rebuilds the joined object locally.
	egressBefore := sim.CostBreakdown()["net:egress"]
	w := sim.World()
	res, err := w.Region("aws:us-east-1").Obj.Compose("src", "joined", []string{"seg-0", "seg-1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = rep.RegisterConcat("joined", res.ETag, []ConcatSource{
		{Key: "seg-0", ETag: seg0.ETag}, {Key: "seg-1", ETag: seg1.ETag},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Wait()

	got, err := sim.HeadObject("gcp:us-east1", "dst", "joined")
	if err != nil || got.ETag != res.ETag {
		t.Fatalf("concat changelog failed: %v", err)
	}
	if after := sim.CostBreakdown()["net:egress"]; after != egressBefore {
		t.Fatalf("concat propagation moved bytes: %v", after-egressBefore)
	}
}
